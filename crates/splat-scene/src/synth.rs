//! Deterministic procedural generation of Gaussian splat clouds.
//!
//! Trained 3D-GS checkpoints place splats in clusters along surfaces, with a
//! heavy-tailed (approximately log-normal) distribution of splat scales and
//! a bimodal opacity distribution (many near-transparent splats plus a core
//! of opaque ones). The generator reproduces those population statistics so
//! that the tile-level behaviour studied by the paper (tiles per Gaussian,
//! sharing between adjacent tiles, Gaussians per pixel) falls in the same
//! ranges as the real scenes.

use crate::rng::Rng;
use crate::scene::Scene;
use splat_types::{Gaussian3d, Quat, Rgb, ShCoefficients, Vec3};

/// Statistical profile of a synthetic splat population.
///
/// All distances are in world units; the default cameras produced by
/// [`crate::datasets::PaperScene::default_camera`] sit at the origin looking
/// along +Z, so splats are generated inside a frustum-shaped slab spanning
/// `depth_range` along +Z.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProfile {
    /// Number of splats to generate.
    pub gaussian_count: usize,
    /// Number of surface-like clusters.
    pub cluster_count: usize,
    /// Standard deviation of splat placement around a cluster center,
    /// as a fraction of the lateral extent.
    pub cluster_spread: f32,
    /// Fraction of splats scattered uniformly instead of clustered
    /// (background / floater splats).
    pub background_fraction: f32,
    /// Lateral half-extent of the populated volume at the far end of
    /// `depth_range` (the slab widens with depth like a frustum).
    pub lateral_extent: f32,
    /// Range of depths (distance from the canonical camera) populated.
    pub depth_range: (f32, f32),
    /// Mean of `ln(scale)` for the log-normal splat scale distribution.
    pub scale_log_mean: f32,
    /// Standard deviation of `ln(scale)`.
    pub scale_log_std: f32,
    /// Maximum axis ratio between the largest and smallest scale axis.
    pub anisotropy: f32,
    /// Fraction of splats that are nearly opaque (opacity ≥ 0.9);
    /// the remainder follow a decaying distribution toward zero.
    pub opaque_fraction: f32,
    /// Spherical-harmonics degree of the generated color coefficients.
    pub sh_degree: usize,
}

impl Default for SynthProfile {
    fn default() -> Self {
        Self {
            gaussian_count: 10_000,
            cluster_count: 64,
            cluster_spread: 0.035,
            background_fraction: 0.15,
            lateral_extent: 12.0,
            depth_range: (2.5, 30.0),
            scale_log_mean: -3.0,
            scale_log_std: 0.9,
            anisotropy: 4.0,
            opaque_fraction: 0.45,
            sh_degree: 1,
        }
    }
}

impl SynthProfile {
    /// Returns a copy with the splat count replaced.
    pub fn with_count(mut self, count: usize) -> Self {
        self.gaussian_count = count;
        self
    }
}

/// Deterministic scene generator.
///
/// The same `(profile, seed)` pair always produces an identical scene, which
/// keeps every experiment in the repository reproducible.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    profile: SynthProfile,
    seed: u64,
}

impl SceneGenerator {
    /// Creates a generator for the given profile and seed.
    pub fn new(profile: SynthProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The profile used by this generator.
    pub fn profile(&self) -> &SynthProfile {
        &self.profile
    }

    /// Generates the scene with the given name and output resolution.
    pub fn generate(&self, name: impl Into<String>, width: u32, height: u32) -> Scene {
        let mut rng = Rng::seed_from_u64(self.seed);
        let p = &self.profile;

        // Cluster centers: scattered through the slab, biased toward the
        // middle depths where trained scenes concentrate geometry.
        let clusters: Vec<Vec3> = (0..p.cluster_count.max(1))
            .map(|_| self.sample_volume_point(&mut rng, 0.85))
            .collect();

        let mut gaussians = Vec::with_capacity(p.gaussian_count);
        for _ in 0..p.gaussian_count {
            let position = if rng.gen_f32() < p.background_fraction {
                self.sample_volume_point(&mut rng, 1.0)
            } else {
                let center = clusters[rng.gen_index(clusters.len())];
                let spread = p.cluster_spread * p.lateral_extent;
                center
                    + Vec3::new(
                        normal(&mut rng) * spread,
                        normal(&mut rng) * spread,
                        normal(&mut rng) * spread,
                    )
            };

            let base_scale = (p.scale_log_mean + p.scale_log_std * normal(&mut rng)).exp();
            let aniso = 1.0 + rng.gen_f32() * (p.anisotropy - 1.0);
            // Distribute the anisotropy over two axes so splats are
            // surface-aligned "pancakes" more often than needles.
            let scale = Vec3::new(
                base_scale * aniso,
                base_scale * (1.0 + rng.gen_f32() * (aniso - 1.0) * 0.5),
                base_scale,
            );

            let rotation = Quat::from_euler(
                rng.gen_f32() * std::f32::consts::TAU,
                (rng.gen_f32() - 0.5) * std::f32::consts::PI,
                rng.gen_f32() * std::f32::consts::TAU,
            );

            let opacity = if rng.gen_f32() < p.opaque_fraction {
                0.9 + 0.1 * rng.gen_f32()
            } else {
                // Decaying distribution toward zero but above the 1/255
                // culling threshold most of the time.
                (rng.gen_f32().powi(2) * 0.85 + 0.02).min(1.0)
            };

            let sh = random_sh(&mut rng, p.sh_degree);

            gaussians.push(
                Gaussian3d::builder()
                    .position(position)
                    .scale(Vec3::new(
                        scale.x.clamp(1e-4, 5.0),
                        scale.y.clamp(1e-4, 5.0),
                        scale.z.clamp(1e-4, 5.0),
                    ))
                    .rotation(rotation)
                    .opacity(opacity)
                    .sh(sh)
                    .build(),
            );
        }

        Scene::new(name, width, height, gaussians)
    }

    /// Samples a point inside the frustum-shaped slab. `lateral_bias` < 1
    /// shrinks the lateral extent (used to keep cluster centers away from
    /// the very edge of the frustum).
    fn sample_volume_point(&self, rng: &mut Rng, lateral_bias: f32) -> Vec3 {
        let p = &self.profile;
        let (near, far) = p.depth_range;
        // Bias depth sampling toward the near half (real captures have more
        // geometry close to the camera path).
        let t = rng.gen_f32().powf(1.35);
        let depth = near + t * (far - near);
        let frac = depth / far;
        let half = p.lateral_extent * frac.max(0.15) * lateral_bias;
        Vec3::new(
            (rng.gen_f32() * 2.0 - 1.0) * half,
            (rng.gen_f32() * 2.0 - 1.0) * half * 0.75,
            depth,
        )
    }
}

/// Standard normal sample via Box–Muller.
fn normal(rng: &mut Rng) -> f32 {
    let u1: f32 = rng.gen_f32().max(1e-7);
    let u2: f32 = rng.gen_f32();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Generates random SH coefficients of the requested degree with a plausible
/// energy fall-off per band.
fn random_sh(rng: &mut Rng, degree: usize) -> ShCoefficients {
    let count = splat_types::sh::coefficient_count(degree.min(splat_types::SH_DEGREE_MAX));
    let mut coeffs = Vec::with_capacity(count);
    // DC term: random base color mapped through the inverse SH0 weighting.
    let base = Rgb::new(rng.gen_f32(), rng.gen_f32(), rng.gen_f32());
    coeffs.push(Rgb::new(
        (base.r - 0.5) / 0.282_094_79,
        (base.g - 0.5) / 0.282_094_79,
        (base.b - 0.5) / 0.282_094_79,
    ));
    for band in 1..count {
        let falloff = 0.25 / (band as f32).sqrt();
        coeffs.push(Rgb::new(
            (rng.gen_f32() - 0.5) * falloff,
            (rng.gen_f32() - 0.5) * falloff,
            (rng.gen_f32() - 0.5) * falloff,
        ));
    }
    // lint:allow(no-panic-paths): the loop above pushes exactly coefficient_count(degree) entries
    ShCoefficients::from_coefficients(coeffs).expect("complete coefficient count")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> SynthProfile {
        SynthProfile {
            gaussian_count: 500,
            ..SynthProfile::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SceneGenerator::new(small_profile(), 7).generate("a", 320, 240);
        let b = SceneGenerator::new(small_profile(), 7).generate("a", 320, 240);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneGenerator::new(small_profile(), 1).generate("a", 320, 240);
        let b = SceneGenerator::new(small_profile(), 2).generate("a", 320, 240);
        assert_ne!(a, b);
    }

    #[test]
    fn generates_requested_count() {
        let scene = SceneGenerator::new(small_profile(), 3).generate("a", 320, 240);
        assert_eq!(scene.len(), 500);
    }

    #[test]
    fn splats_lie_inside_depth_range() {
        let profile = small_profile();
        let (near, far) = profile.depth_range;
        let scene = SceneGenerator::new(profile, 11).generate("a", 320, 240);
        // Cluster spread can push a few splats slightly outside; allow a
        // small margin.
        let margin = 2.0;
        for g in &scene {
            assert!(g.position().z > near - margin && g.position().z < far + margin);
        }
    }

    #[test]
    fn opacities_are_valid() {
        let scene = SceneGenerator::new(small_profile(), 5).generate("a", 320, 240);
        for g in &scene {
            assert!((0.0..=1.0).contains(&g.opacity()));
        }
    }

    #[test]
    fn opaque_fraction_is_respected_roughly() {
        let mut profile = small_profile();
        profile.gaussian_count = 4000;
        profile.opaque_fraction = 0.5;
        let scene = SceneGenerator::new(profile, 9).generate("a", 320, 240);
        let opaque = scene.iter().filter(|g| g.opacity() >= 0.9).count();
        let frac = opaque as f32 / scene.len() as f32;
        assert!((0.4..0.6).contains(&frac), "opaque fraction {frac}");
    }

    #[test]
    fn scales_are_positive_and_bounded() {
        let scene = SceneGenerator::new(small_profile(), 13).generate("a", 320, 240);
        for g in &scene {
            let s = g.scale();
            assert!(s.x > 0.0 && s.y > 0.0 && s.z > 0.0);
            assert!(s.max_component() <= 5.0);
        }
    }

    #[test]
    fn with_count_overrides_count() {
        let p = SynthProfile::default().with_count(42);
        assert_eq!(p.gaussian_count, 42);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = Rng::seed_from_u64(100);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
