//! Camera trajectory generation for multi-view experiments.
//!
//! The paper's evaluation renders held-out test views of each scene (every
//! 8th/64th/128th image depending on the dataset). The synthetic analogue is
//! a deterministic camera path through the populated volume; experiments
//! sample a handful of views from it.

use splat_types::{Camera, CameraIntrinsics, Vec3};

/// A deterministic sequence of camera poses sharing one set of intrinsics.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraTrajectory {
    intrinsics: CameraIntrinsics,
    keyframes: Vec<Pose>,
}

/// A single camera pose (eye position plus look-at target).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Camera position.
    pub eye: Vec3,
    /// Point the camera looks at.
    pub target: Vec3,
}

impl CameraTrajectory {
    /// A lateral sweep in front of the scene: the camera slides along X at
    /// the origin plane while looking into the populated slab, which mimics
    /// the capture paths of Tanks&Temples-style scenes.
    ///
    /// `lateral_extent` is the half-width of the sweep, `focus_depth` the
    /// depth of the look-at point and `view_count` the number of poses.
    pub fn lateral_sweep(
        intrinsics: CameraIntrinsics,
        lateral_extent: f32,
        focus_depth: f32,
        view_count: usize,
    ) -> Self {
        let count = view_count.max(1);
        let keyframes = (0..count)
            .map(|i| {
                let t = if count == 1 {
                    0.5
                } else {
                    i as f32 / (count - 1) as f32
                };
                let x = (t * 2.0 - 1.0) * lateral_extent;
                Pose {
                    eye: Vec3::new(x, 0.0, 0.0),
                    target: Vec3::new(x * 0.3, 0.0, focus_depth),
                }
            })
            .collect();
        Self {
            intrinsics,
            keyframes,
        }
    }

    /// An orbit around a center point at fixed height and radius, looking
    /// inward — the typical object-centric capture (e.g. *truck*).
    pub fn orbit(
        intrinsics: CameraIntrinsics,
        center: Vec3,
        radius: f32,
        height: f32,
        view_count: usize,
    ) -> Self {
        let count = view_count.max(1);
        let keyframes = (0..count)
            .map(|i| {
                let angle = std::f32::consts::TAU * i as f32 / count as f32;
                Pose {
                    eye: center + Vec3::new(radius * angle.cos(), height, radius * angle.sin()),
                    target: center,
                }
            })
            .collect();
        Self {
            intrinsics,
            keyframes,
        }
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.keyframes.len()
    }

    /// Returns `true` when the trajectory holds no poses.
    pub fn is_empty(&self) -> bool {
        self.keyframes.is_empty()
    }

    /// The camera for pose `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn camera(&self, index: usize) -> Camera {
        let pose = self.keyframes[index];
        Camera::look_at(pose.eye, pose.target, Vec3::Y, self.intrinsics)
    }

    /// Iterates over all cameras of the trajectory.
    pub fn cameras(&self) -> impl Iterator<Item = Camera> + '_ {
        (0..self.len()).map(|i| self.camera(i))
    }

    /// Selects every `stride`-th pose, mirroring the paper's
    /// train/test-split convention (every 8th image for T&T and DB, every
    /// 64th for Mill-19, every 128th for UrbanScene3D).
    pub fn test_split(&self, stride: usize) -> Vec<Camera> {
        let stride = stride.max(1);
        (0..self.len())
            .step_by(stride)
            .map(|i| self.camera(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intr() -> CameraIntrinsics {
        CameraIntrinsics::from_fov_y(1.0, 640, 480)
    }

    #[test]
    fn lateral_sweep_spans_extent() {
        let traj = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 11);
        assert_eq!(traj.len(), 11);
        let first = traj.camera(0);
        let last = traj.camera(10);
        assert!((first.position().x + 5.0).abs() < 1e-5);
        assert!((last.position().x - 5.0).abs() < 1e-5);
    }

    #[test]
    fn single_view_sweep_is_centered() {
        let traj = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 1);
        assert_eq!(traj.len(), 1);
        assert!(traj.camera(0).position().x.abs() < 1e-5);
    }

    #[test]
    fn orbit_keeps_constant_distance() {
        let center = Vec3::new(1.0, 0.0, 5.0);
        let traj = CameraTrajectory::orbit(intr(), center, 4.0, 2.0, 8);
        for cam in traj.cameras() {
            let lateral = (cam.position() - center - Vec3::new(0.0, 2.0, 0.0)).length();
            assert!((lateral - 4.0).abs() < 1e-4);
        }
    }

    #[test]
    fn test_split_strides_through_views() {
        let traj = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 16);
        assert_eq!(traj.test_split(8).len(), 2);
        assert_eq!(traj.test_split(1).len(), 16);
        // Stride zero is clamped to one rather than panicking.
        assert_eq!(traj.test_split(0).len(), 16);
    }

    #[test]
    fn trajectories_are_pose_deterministic() {
        // Rebuilding a trajectory from the same parameters must yield
        // bitwise-identical poses and cameras — sessions and benches rely
        // on frame N of a replayed trajectory matching frame N exactly.
        let orbit_a = CameraTrajectory::orbit(intr(), Vec3::new(1.0, 0.5, 5.0), 4.0, 2.0, 9);
        let orbit_b = CameraTrajectory::orbit(intr(), Vec3::new(1.0, 0.5, 5.0), 4.0, 2.0, 9);
        assert_eq!(orbit_a, orbit_b);
        let sweep_a = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 7);
        let sweep_b = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 7);
        assert_eq!(sweep_a, sweep_b);
        for i in 0..orbit_a.len() {
            assert_eq!(
                orbit_a.camera(i).view_matrix(),
                orbit_b.camera(i).view_matrix(),
                "orbit pose {i}"
            );
        }
    }

    #[test]
    fn zero_view_count_is_clamped_to_a_single_pose() {
        let sweep = CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 0);
        assert_eq!(sweep.len(), 1);
        assert!(!sweep.is_empty());
        // The single pose equals the explicit one-view trajectory (the
        // centered pose).
        assert_eq!(sweep, CameraTrajectory::lateral_sweep(intr(), 5.0, 10.0, 1));

        let orbit = CameraTrajectory::orbit(intr(), Vec3::ZERO, 3.0, 1.0, 0);
        assert_eq!(orbit.len(), 1);
        assert_eq!(
            orbit,
            CameraTrajectory::orbit(intr(), Vec3::ZERO, 3.0, 1.0, 1)
        );
        // Angle 0 of a one-pose orbit: eye at center + (radius, height, 0).
        let eye = orbit.camera(0).position();
        assert!((eye.x - 3.0).abs() < 1e-6 && (eye.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn single_view_orbit_camera_is_finite() {
        let orbit = CameraTrajectory::orbit(intr(), Vec3::new(0.0, 0.0, 5.0), 2.0, 0.5, 1);
        let cam = orbit.camera(0);
        assert!(cam.position().x.is_finite());
        assert!(cam.depth_of(Vec3::new(0.0, 0.0, 5.0)) > 0.0);
    }

    #[test]
    fn cameras_look_toward_target() {
        let traj = CameraTrajectory::lateral_sweep(intr(), 3.0, 12.0, 5);
        for (i, cam) in traj.cameras().enumerate() {
            let target = traj.keyframes[i].target;
            assert!(
                cam.depth_of(target) > 0.0,
                "target behind camera for pose {i}"
            );
        }
    }
}
