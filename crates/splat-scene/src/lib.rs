//! Scene substrate for the GS-TG reproduction.
//!
//! The paper evaluates on six pre-trained 3D-GS scenes (Tanks&Temples
//! *train*/*truck*, Deep Blending *drjohnson*/*playroom*, Mill-19 *rubble*
//! and UrbanScene3D *residence*). Those checkpoints are not redistributable,
//! so this crate synthesises Gaussian clouds whose *geometric statistics*
//! (splat count, spatial clustering, screen-space footprint distribution,
//! opacity distribution) are calibrated per scene profile, at the paper's
//! exact image resolutions. The tile-size trade-off that GS-TG exploits is a
//! function of those statistics, not of the photometric content, so the
//! synthetic scenes exercise the same code paths and produce the same
//! qualitative behaviour.
//!
//! # Quick example
//!
//! ```
//! use splat_scene::{PaperScene, SceneScale};
//!
//! let scene = PaperScene::Train.build(SceneScale::Tiny, 42);
//! assert!(scene.len() > 0);
//! let cam = PaperScene::Train.default_camera();
//! assert_eq!(cam.width(), 1959);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod io;
pub mod lod;
pub use splat_types::rng;
pub mod scene;
pub mod stats;
pub mod synth;
pub mod trajectory;

pub use datasets::{PaperScene, SceneScale, SceneType};
pub use lod::{LodLadder, QualityTier};
pub use scene::{Scene, SceneSoA};
pub use stats::SceneStats;
pub use synth::{SceneGenerator, SynthProfile};
pub use trajectory::CameraTrajectory;
