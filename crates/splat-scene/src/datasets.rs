//! The six evaluation scenes of the GS-TG paper (Table II) as synthetic
//! profiles.
//!
//! | Dataset | Scene | Resolution | Type |
//! |---|---|---|---|
//! | Tanks&Temples | train | 1959×1090 | outdoor |
//! | Tanks&Temples | truck | 1957×1091 | outdoor |
//! | Deep Blending | drjohnson | 1332×876 | indoor |
//! | Deep Blending | playroom | 1264×832 | indoor |
//! | Mill-19 | rubble | 4608×3456 | outdoor (aerial) |
//! | UrbanScene3D | residence | 5472×3648 | outdoor (aerial) |
//!
//! The pre-trained 3D-GS-30k checkpoints are not redistributable, so each
//! scene is represented by a [`SynthProfile`] whose population statistics
//! (splat count scaled by [`SceneScale`], clustering, splat footprint) are
//! chosen so the pipeline-level metrics the paper reports (tiles per
//! Gaussian, shared-Gaussian percentage, Gaussians per pixel) land in the
//! same regime.

use crate::scene::Scene;
use crate::synth::{SceneGenerator, SynthProfile};
use splat_types::{Camera, CameraIntrinsics, Vec3};

/// The kind of environment a scene captures; drives the synthetic profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneType {
    /// Ground-level outdoor capture (Tanks&Temples).
    Outdoor,
    /// Indoor capture (Deep Blending).
    Indoor,
    /// High-resolution aerial capture (Mill-19, UrbanScene3D).
    Aerial,
}

impl SceneType {
    /// Human-readable label matching the paper's Table II "Type" column.
    pub fn label(self) -> &'static str {
        match self {
            SceneType::Outdoor => "Outdoor",
            SceneType::Indoor => "Indoor",
            SceneType::Aerial => "Outdoor",
        }
    }
}

/// Overall scene size: scales the splat count so experiments can trade
/// fidelity for runtime.
///
/// `Paper` approaches the order of magnitude of the real checkpoints and is
/// only intended for long benchmark runs; `Small` is the default for the
/// figure-regeneration binaries and `Tiny` for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SceneScale {
    /// ~2k splats; unit tests and doctests.
    Tiny,
    /// ~20k splats; quick experiments.
    #[default]
    Small,
    /// ~80k splats; the default for figure regeneration.
    Medium,
    /// ~400k splats; long runs that approximate the real checkpoints.
    Paper,
}

impl SceneScale {
    /// Multiplier applied to the per-scene base splat count.
    pub fn count_factor(self) -> f32 {
        match self {
            SceneScale::Tiny => 0.025,
            SceneScale::Small => 0.25,
            SceneScale::Medium => 1.0,
            SceneScale::Paper => 5.0,
        }
    }
}

/// One of the six evaluation scenes used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperScene {
    /// Tanks&Temples *train* (1959×1090, outdoor).
    Train,
    /// Tanks&Temples *truck* (1957×1091, outdoor).
    Truck,
    /// Deep Blending *drjohnson* (1332×876, indoor).
    Drjohnson,
    /// Deep Blending *playroom* (1264×832, indoor).
    Playroom,
    /// Mill-19 *rubble* (4608×3456, aerial).
    Rubble,
    /// UrbanScene3D *residence* (5472×3648, aerial).
    Residence,
}

impl PaperScene {
    /// The four scenes used in the algorithm-level evaluation
    /// (Figs. 3, 5, 7, 11, 12, 13 and Table I).
    pub const ALGORITHM_SET: [PaperScene; 4] = [
        PaperScene::Train,
        PaperScene::Truck,
        PaperScene::Drjohnson,
        PaperScene::Playroom,
    ];

    /// All six scenes used in the hardware evaluation (Figs. 14, 15).
    pub const HARDWARE_SET: [PaperScene; 6] = [
        PaperScene::Train,
        PaperScene::Truck,
        PaperScene::Drjohnson,
        PaperScene::Playroom,
        PaperScene::Rubble,
        PaperScene::Residence,
    ];

    /// Scene name in the paper's lowercase spelling.
    pub fn name(self) -> &'static str {
        match self {
            PaperScene::Train => "train",
            PaperScene::Truck => "truck",
            PaperScene::Drjohnson => "drjohnson",
            PaperScene::Playroom => "playroom",
            PaperScene::Rubble => "rubble",
            PaperScene::Residence => "residence",
        }
    }

    /// Source dataset name (Table II).
    pub fn dataset(self) -> &'static str {
        match self {
            PaperScene::Train | PaperScene::Truck => "Tanks&Temples",
            PaperScene::Drjohnson | PaperScene::Playroom => "Deep Blending",
            PaperScene::Rubble => "Mill-19",
            PaperScene::Residence => "UrbanScene3D",
        }
    }

    /// Output resolution `(width, height)` from Table II.
    pub fn resolution(self) -> (u32, u32) {
        match self {
            PaperScene::Train => (1959, 1090),
            PaperScene::Truck => (1957, 1091),
            PaperScene::Drjohnson => (1332, 876),
            PaperScene::Playroom => (1264, 832),
            PaperScene::Rubble => (4608, 3456),
            PaperScene::Residence => (5472, 3648),
        }
    }

    /// Environment type (Table II).
    pub fn scene_type(self) -> SceneType {
        match self {
            PaperScene::Train | PaperScene::Truck => SceneType::Outdoor,
            PaperScene::Drjohnson | PaperScene::Playroom => SceneType::Indoor,
            PaperScene::Rubble | PaperScene::Residence => SceneType::Aerial,
        }
    }

    /// Deterministic per-scene seed so each scene has distinct but
    /// reproducible content.
    pub fn seed(self) -> u64 {
        match self {
            PaperScene::Train => 0x7261_696e,
            PaperScene::Truck => 0x7472_7563,
            PaperScene::Drjohnson => 0x646a_6f68,
            PaperScene::Playroom => 0x706c_6179,
            PaperScene::Rubble => 0x7275_6262,
            PaperScene::Residence => 0x7265_7369,
        }
    }

    /// Base splat count before the [`SceneScale`] multiplier. Real
    /// checkpoints hold 1–6 M splats; the bases keep the same relative
    /// ordering between scenes (indoor < outdoor < aerial).
    fn base_count(self) -> usize {
        match self {
            PaperScene::Train => 72_000,
            PaperScene::Truck => 84_000,
            PaperScene::Drjohnson => 56_000,
            PaperScene::Playroom => 48_000,
            PaperScene::Rubble => 120_000,
            PaperScene::Residence => 140_000,
        }
    }

    /// The synthetic profile for this scene at the given scale.
    pub fn profile(self, scale: SceneScale) -> SynthProfile {
        let count = ((self.base_count() as f32) * scale.count_factor()).round() as usize;

        match self.scene_type() {
            SceneType::Outdoor => SynthProfile {
                cluster_count: 96,
                cluster_spread: 0.030,
                background_fraction: 0.20,
                lateral_extent: 14.0,
                depth_range: (2.5, 35.0),
                scale_log_mean: -2.9,
                scale_log_std: 0.95,
                anisotropy: 5.0,
                opaque_fraction: 0.42,
                sh_degree: 1,
                gaussian_count: count,
            },
            SceneType::Indoor => SynthProfile {
                cluster_count: 48,
                cluster_spread: 0.045,
                background_fraction: 0.10,
                lateral_extent: 7.0,
                depth_range: (1.5, 14.0),
                scale_log_mean: -3.2,
                scale_log_std: 0.80,
                anisotropy: 4.0,
                opaque_fraction: 0.50,
                sh_degree: 1,
                gaussian_count: count,
            },
            SceneType::Aerial => SynthProfile {
                cluster_count: 160,
                cluster_spread: 0.022,
                background_fraction: 0.25,
                lateral_extent: 28.0,
                depth_range: (6.0, 80.0),
                scale_log_mean: -2.4,
                scale_log_std: 1.05,
                anisotropy: 6.0,
                opaque_fraction: 0.38,
                sh_degree: 1,
                gaussian_count: count,
            },
        }
    }

    /// Generates the synthetic scene at the paper's resolution.
    pub fn build(self, scale: SceneScale, seed_offset: u64) -> Scene {
        let (w, h) = self.resolution();
        SceneGenerator::new(self.profile(scale), self.seed() ^ seed_offset).generate(
            self.name(),
            w,
            h,
        )
    }

    /// The canonical test-view camera for this scene: placed at the origin
    /// looking along +Z into the populated slab, with a field of view
    /// typical of the source captures.
    pub fn default_camera(self) -> Camera {
        let (w, h) = self.resolution();
        let fov_y = match self.scene_type() {
            SceneType::Outdoor => 0.90,
            SceneType::Indoor => 1.05,
            SceneType::Aerial => 0.75,
        };
        Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(fov_y, w, h),
        )
    }
}

impl std::fmt::Display for PaperScene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_match_table_ii() {
        assert_eq!(PaperScene::Train.resolution(), (1959, 1090));
        assert_eq!(PaperScene::Truck.resolution(), (1957, 1091));
        assert_eq!(PaperScene::Drjohnson.resolution(), (1332, 876));
        assert_eq!(PaperScene::Playroom.resolution(), (1264, 832));
        assert_eq!(PaperScene::Rubble.resolution(), (4608, 3456));
        assert_eq!(PaperScene::Residence.resolution(), (5472, 3648));
    }

    #[test]
    fn datasets_match_table_ii() {
        assert_eq!(PaperScene::Train.dataset(), "Tanks&Temples");
        assert_eq!(PaperScene::Playroom.dataset(), "Deep Blending");
        assert_eq!(PaperScene::Rubble.dataset(), "Mill-19");
        assert_eq!(PaperScene::Residence.dataset(), "UrbanScene3D");
    }

    #[test]
    fn scene_types_match_table_ii() {
        assert_eq!(PaperScene::Train.scene_type(), SceneType::Outdoor);
        assert_eq!(PaperScene::Drjohnson.scene_type(), SceneType::Indoor);
        assert_eq!(PaperScene::Residence.scene_type(), SceneType::Aerial);
        // Aerial scenes are labelled "Outdoor" in the paper's table.
        assert_eq!(SceneType::Aerial.label(), "Outdoor");
    }

    #[test]
    fn build_produces_scene_at_paper_resolution() {
        let scene = PaperScene::Playroom.build(SceneScale::Tiny, 0);
        assert_eq!(scene.width(), 1264);
        assert_eq!(scene.height(), 832);
        assert_eq!(scene.name(), "playroom");
        assert!(scene.len() > 500);
    }

    #[test]
    fn scale_orders_counts() {
        let tiny = PaperScene::Train.profile(SceneScale::Tiny).gaussian_count;
        let small = PaperScene::Train.profile(SceneScale::Small).gaussian_count;
        let medium = PaperScene::Train.profile(SceneScale::Medium).gaussian_count;
        assert!(tiny < small && small < medium);
    }

    #[test]
    fn default_camera_matches_resolution() {
        for scene in PaperScene::HARDWARE_SET {
            let cam = scene.default_camera();
            assert_eq!((cam.width(), cam.height()), scene.resolution());
        }
    }

    #[test]
    fn build_is_deterministic_per_scene() {
        let a = PaperScene::Truck.build(SceneScale::Tiny, 1);
        let b = PaperScene::Truck.build(SceneScale::Tiny, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn scenes_have_distinct_seeds() {
        let mut seeds: Vec<u64> = PaperScene::HARDWARE_SET.iter().map(|s| s.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn most_splats_are_visible_from_default_camera() {
        let scene = PaperScene::Train.build(SceneScale::Tiny, 0);
        let cam = PaperScene::Train.default_camera();
        let visible = scene
            .iter()
            .filter(|g| cam.is_in_frustum(g.position(), g.bounding_radius()))
            .count();
        let frac = visible as f32 / scene.len() as f32;
        assert!(frac > 0.5, "only {frac} of splats visible");
    }
}
