//! Deterministic level-of-detail ladder for quality-degraded serving.
//!
//! Overloaded serving wants a cheaper frame, not a refusal: the JPAC line
//! of work tunes service *quality* jointly with admission instead of
//! shedding outright. This module is the scene half of that ladder — a
//! fixed sequence of [`QualityTier`]s, each derived **deterministically**
//! from the full scene (stable index order, no randomness, no
//! configuration), so a degraded frame is bit-reproducible across
//! threads, SIMD modes and pipelines exactly like a full-quality one.
//!
//! The ladder is cumulative — every step keeps the previous step's
//! reductions and adds one more:
//!
//! | Tier | Derivation | Saves |
//! |---|---|---|
//! | [`QualityTier::Full`] | the scene itself | — |
//! | [`QualityTier::Tier1`] | SH degree capped at 1 | SH evaluation + bandwidth |
//! | [`QualityTier::Tier2`] | + opacity-pruned splats | preprocessing + sorting |
//! | [`QualityTier::Tier3`] | + 2:1 decimation, rendered at half resolution | everything, ~4× pixels |
//!
//! [`LodLadder::build`] derives all three tiers once (the serving engine
//! does this at `register_scene` and shares them via `Arc`);
//! [`LodLadder::tier_scene`] derives a single tier on demand for inline
//! submissions that never registered.

use crate::scene::Scene;
use splat_types::sh::coefficient_count;
use splat_types::{Gaussian3d, Rgb, ShCoefficients};
use std::sync::Arc;

/// Opacity below which a splat is dropped at [`QualityTier::Tier2`].
///
/// Nearly transparent splats contribute little to the blend but cost the
/// full preprocessing/sorting path; pruning them first is the cheapest
/// rung of the ladder after SH reduction.
pub const OPACITY_PRUNE_THRESHOLD: f32 = 0.2;

/// Decimation stride of [`QualityTier::Tier3`]: every `DECIMATION_STRIDE`-th
/// splat (starting at index 0) is kept.
pub const DECIMATION_STRIDE: usize = 2;

/// SH degree cap applied from [`QualityTier::Tier1`] down.
///
/// Zero keeps only the DC band: degraded serves drop view-dependent color
/// entirely, which degrades every scene (the synthetic evaluation set
/// carries degree-1 SH, so any higher cap would be a no-op rung there).
pub const REDUCED_SH_DEGREE: usize = 0;

/// One rung of the serving quality ladder.
///
/// Tiers order by degradation: `Full < Tier1 < Tier2 < Tier3`. The engine's
/// `QualityPolicy` maps queue pressure to a tier; the scene side of each
/// tier is derived by [`QualityTier::apply`] / [`LodLadder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum QualityTier {
    /// Full quality: the scene exactly as registered.
    #[default]
    Full,
    /// SH degree capped at [`REDUCED_SH_DEGREE`]: view-dependent color
    /// keeps only the DC band.
    Tier1,
    /// [`QualityTier::Tier1`] plus opacity pruning below
    /// [`OPACITY_PRUNE_THRESHOLD`] (stable index order; falls back to the
    /// unpruned set rather than ever serving an empty scene).
    Tier2,
    /// [`QualityTier::Tier2`] plus 2:1 decimation, rendered at half
    /// resolution and upsampled (nearest-neighbor) at delivery.
    Tier3,
}

impl QualityTier {
    /// Every tier, most to least faithful.
    pub const ALL: [QualityTier; 4] = [
        QualityTier::Full,
        QualityTier::Tier1,
        QualityTier::Tier2,
        QualityTier::Tier3,
    ];

    /// Short stable label used in flags, tables and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            QualityTier::Full => "full",
            QualityTier::Tier1 => "t1",
            QualityTier::Tier2 => "t2",
            QualityTier::Tier3 => "t3",
        }
    }

    /// Parses a [`QualityTier::label`] back into a tier.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "full" => Some(QualityTier::Full),
            "t1" => Some(QualityTier::Tier1),
            "t2" => Some(QualityTier::Tier2),
            "t3" => Some(QualityTier::Tier3),
            _ => None,
        }
    }

    /// Whether this tier serves below full quality.
    #[inline]
    pub fn is_degraded(self) -> bool {
        self != QualityTier::Full
    }

    /// Whether this tier renders at half resolution (the framebuffer is
    /// upsampled back to the requested dimensions at delivery).
    #[inline]
    pub fn half_resolution(self) -> bool {
        self == QualityTier::Tier3
    }

    /// Derives this tier's scene from a full-quality scene.
    ///
    /// [`QualityTier::Full`] returns a plain clone. The derivation is
    /// cumulative and deterministic: applying the same tier to the same
    /// scene always yields an identical scene (pinned by the golden-frame
    /// tier digests).
    pub fn apply(self, scene: &Scene) -> Scene {
        match self {
            QualityTier::Full => scene.clone(),
            QualityTier::Tier1 => scene.with_max_sh_degree(REDUCED_SH_DEGREE),
            QualityTier::Tier2 => QualityTier::Tier1
                .apply(scene)
                .opacity_pruned(OPACITY_PRUNE_THRESHOLD),
            QualityTier::Tier3 => QualityTier::Tier2.apply(scene).decimated(DECIMATION_STRIDE),
        }
    }
}

impl std::fmt::Display for QualityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The three degraded tiers of one scene, derived once and shared.
///
/// Built by the serving engine at `register_scene` when its quality policy
/// can degrade; the tier scenes are `Arc`-shared into jobs so a degraded
/// serve costs one pointer clone, and [`LodLadder::footprint_bytes`] is
/// what the residency policy charges for keeping the ladder resident.
#[derive(Debug, Clone)]
pub struct LodLadder {
    tier1: Arc<Scene>,
    tier2: Arc<Scene>,
    tier3: Arc<Scene>,
}

impl LodLadder {
    /// Derives every degraded tier of `scene` (cumulatively, in stable
    /// index order). Deterministic: the same scene always builds an
    /// identical ladder.
    pub fn build(scene: &Scene) -> Self {
        let tier1 = scene.with_max_sh_degree(REDUCED_SH_DEGREE);
        let tier2 = tier1.opacity_pruned(OPACITY_PRUNE_THRESHOLD);
        let tier3 = tier2.decimated(DECIMATION_STRIDE);
        Self {
            tier1: Arc::new(tier1),
            tier2: Arc::new(tier2),
            tier3: Arc::new(tier3),
        }
    }

    /// The shared scene of a degraded tier, or `None` for
    /// [`QualityTier::Full`] (the full scene lives outside the ladder).
    pub fn scene(&self, tier: QualityTier) -> Option<&Arc<Scene>> {
        match tier {
            QualityTier::Full => None,
            QualityTier::Tier1 => Some(&self.tier1),
            QualityTier::Tier2 => Some(&self.tier2),
            QualityTier::Tier3 => Some(&self.tier3),
        }
    }

    /// Derives a single tier's scene on demand — the fallback for inline
    /// submissions whose scene was never registered (and therefore has no
    /// prebuilt ladder). Bit-identical to the corresponding
    /// [`LodLadder::scene`] entry.
    pub fn tier_scene(scene: &Scene, tier: QualityTier) -> Scene {
        tier.apply(scene)
    }

    /// Resident-memory estimate of the three tier scenes, in the same
    /// units as [`Scene::footprint_bytes`] — what the residency policy
    /// additionally charges for a ladder-carrying registration.
    pub fn footprint_bytes(&self) -> usize {
        self.tier1.footprint_bytes() + self.tier2.footprint_bytes() + self.tier3.footprint_bytes()
    }
}

impl Scene {
    /// Returns a copy with every splat's SH coefficients truncated to
    /// `max_degree` (view-dependent bands above it are dropped; splats at
    /// or below the cap are cloned unchanged). Stable index order.
    pub fn with_max_sh_degree(&self, max_degree: usize) -> Scene {
        Scene::new(
            self.name().to_owned(),
            self.width(),
            self.height(),
            self.iter().map(|g| truncate_sh(g, max_degree)).collect(),
        )
    }

    /// Returns a copy keeping only splats with opacity at or above
    /// `threshold`, in stable index order. A pruning that would empty the
    /// scene falls back to the unpruned splat set — a degraded tier must
    /// never turn a servable scene into an `EmptyScene` error.
    pub fn opacity_pruned(&self, threshold: f32) -> Scene {
        let kept: Vec<Gaussian3d> = self
            .iter()
            .filter(|g| g.opacity() >= threshold)
            .cloned()
            .collect();
        let gaussians = if kept.is_empty() && !self.is_empty() {
            self.gaussians().to_vec()
        } else {
            kept
        };
        Scene::new(
            self.name().to_owned(),
            self.width(),
            self.height(),
            gaussians,
        )
    }

    /// Returns a copy keeping every `stride`-th splat starting at index 0
    /// (a stride of 0 or 1 keeps everything). Index 0 is always kept, so a
    /// non-empty scene stays non-empty.
    pub fn decimated(&self, stride: usize) -> Scene {
        if stride <= 1 {
            return self.clone();
        }
        Scene::new(
            self.name().to_owned(),
            self.width(),
            self.height(),
            self.iter().step_by(stride).cloned().collect(),
        )
    }
}

/// Truncates one splat's SH coefficients to `max_degree`, preserving every
/// other parameter bit-exactly.
fn truncate_sh(g: &Gaussian3d, max_degree: usize) -> Gaussian3d {
    if g.sh().degree() <= max_degree {
        return g.clone();
    }
    let kept: Vec<Rgb> = g
        .sh()
        .coefficients()
        .iter()
        .take(coefficient_count(max_degree))
        .copied()
        .collect();
    let Ok(sh) = ShCoefficients::from_coefficients(kept) else {
        // Unreachable for a validly constructed splat (the truncated count
        // is always complete); keep the original rather than panic.
        return g.clone();
    };
    // Swap only the SH: rebuilding through the validating builder would
    // re-normalize the rotation and drift its low bits, and a tier view
    // must stay geometrically bit-identical to its source.
    g.with_sh(sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{PaperScene, SceneScale};
    use splat_types::{Quat, Vec3};

    fn scene() -> Scene {
        PaperScene::Playroom.build(SceneScale::Tiny, 0)
    }

    #[test]
    fn tier_labels_round_trip() {
        for tier in QualityTier::ALL {
            assert_eq!(QualityTier::from_label(tier.label()), Some(tier));
            assert_eq!(tier.to_string(), tier.label());
        }
        assert_eq!(QualityTier::from_label("t9"), None);
    }

    #[test]
    fn tiers_order_by_degradation() {
        assert!(QualityTier::Full < QualityTier::Tier1);
        assert!(QualityTier::Tier2 < QualityTier::Tier3);
        assert!(!QualityTier::Full.is_degraded());
        assert!(QualityTier::Tier1.is_degraded());
        assert!(QualityTier::Tier3.half_resolution());
        assert!(!QualityTier::Tier2.half_resolution());
    }

    #[test]
    fn sh_truncation_caps_degree_and_keeps_everything_else() {
        let full = scene();
        let reduced = full.with_max_sh_degree(REDUCED_SH_DEGREE);
        assert_eq!(reduced.len(), full.len());
        for (a, b) in full.iter().zip(reduced.iter()) {
            assert_eq!(b.sh().degree(), REDUCED_SH_DEGREE);
            assert_eq!(a.position(), b.position());
            assert_eq!(a.scale(), b.scale());
            assert_eq!(a.rotation(), b.rotation());
            assert_eq!(a.opacity().to_bits(), b.opacity().to_bits());
            // The kept coefficients are the leading ones, bit-exact.
            let kept = coefficient_count(b.sh().degree());
            assert_eq!(&a.sh().coefficients()[..kept], b.sh().coefficients());
        }
    }

    #[test]
    fn opacity_pruning_is_stable_and_never_empties() {
        let full = scene();
        let pruned = full.opacity_pruned(OPACITY_PRUNE_THRESHOLD);
        assert!(!pruned.is_empty());
        assert!(pruned.len() <= full.len());
        assert!(pruned
            .iter()
            .all(|g| g.opacity() >= OPACITY_PRUNE_THRESHOLD));
        // Stable order: the kept splats appear in their original order.
        let expected: Vec<&Gaussian3d> = full
            .iter()
            .filter(|g| g.opacity() >= OPACITY_PRUNE_THRESHOLD)
            .collect();
        assert_eq!(pruned.len(), expected.len());
        for (a, b) in expected.iter().zip(pruned.iter()) {
            assert_eq!(*a, b);
        }
        // A threshold nothing survives falls back to the full set.
        let all_pruned = full.opacity_pruned(2.0);
        assert_eq!(all_pruned.len(), full.len());
    }

    #[test]
    fn decimation_keeps_every_stride_th_splat() {
        let full = scene();
        let half = full.decimated(2);
        assert_eq!(half.len(), full.len().div_ceil(2));
        for (i, g) in half.iter().enumerate() {
            assert_eq!(g, &full.gaussians()[i * 2]);
        }
        assert_eq!(full.decimated(0).len(), full.len());
        assert_eq!(full.decimated(1).len(), full.len());
        // A single-splat scene survives any stride.
        let one = full.truncated(1);
        assert_eq!(one.decimated(1000).len(), 1);
    }

    #[test]
    fn ladder_matches_tier_apply_and_is_deterministic() {
        let full = scene();
        let ladder_a = LodLadder::build(&full);
        let ladder_b = LodLadder::build(&full);
        for tier in [QualityTier::Tier1, QualityTier::Tier2, QualityTier::Tier3] {
            let from_ladder_a = ladder_a.scene(tier).expect("degraded tier");
            let from_ladder_b = ladder_b.scene(tier).expect("degraded tier");
            let on_demand = LodLadder::tier_scene(&full, tier);
            assert_eq!(**from_ladder_a, on_demand, "{tier} replay drifted");
            assert_eq!(**from_ladder_a, **from_ladder_b, "{tier} rebuild drifted");
        }
        assert!(ladder_a.scene(QualityTier::Full).is_none());
    }

    #[test]
    fn ladder_is_cumulative_and_monotonically_smaller() {
        let full = scene();
        let ladder = LodLadder::build(&full);
        let t1 = ladder.scene(QualityTier::Tier1).expect("t1");
        let t2 = ladder.scene(QualityTier::Tier2).expect("t2");
        let t3 = ladder.scene(QualityTier::Tier3).expect("t3");
        assert!(t1.len() >= t2.len());
        assert!(t2.len() >= t3.len());
        assert!(!t3.is_empty());
        assert!(t1.footprint_bytes() <= full.footprint_bytes());
        assert_eq!(
            ladder.footprint_bytes(),
            t1.footprint_bytes() + t2.footprint_bytes() + t3.footprint_bytes()
        );
        // Tier 2 keeps tier 1's SH cap; tier 3 keeps tier 2's pruning.
        assert!(t2.iter().all(|g| g.sh().degree() == REDUCED_SH_DEGREE));
        assert!(t3.iter().all(|g| g.sh().degree() == REDUCED_SH_DEGREE));
    }

    #[test]
    fn degenerate_scenes_stay_servable() {
        let single = Scene::new(
            "one",
            32,
            32,
            vec![Gaussian3d::builder()
                .position(Vec3::ZERO)
                .scale(Vec3::splat(0.1))
                .rotation(Quat::IDENTITY)
                .opacity(0.01)
                .base_color([0.5, 0.5, 0.5])
                .build()],
        );
        // The only splat is below the prune threshold: fallback keeps it.
        let ladder = LodLadder::build(&single);
        for tier in [QualityTier::Tier1, QualityTier::Tier2, QualityTier::Tier3] {
            assert_eq!(ladder.scene(tier).expect("tier").len(), 1);
        }
        let empty = Scene::new("empty", 8, 8, Vec::new());
        let empty_ladder = LodLadder::build(&empty);
        assert!(empty_ladder
            .scene(QualityTier::Tier3)
            .expect("tier")
            .is_empty());
    }
}
