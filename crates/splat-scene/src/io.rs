//! Compact binary serialization of scenes.
//!
//! Scenes are large (hundreds of thousands of splats at the bigger scales),
//! so a simple length-prefixed binary layout is provided in addition to the
//! `serde` derives. The format stores every splat as fixed-width
//! little-endian floats, mirroring the flat parameter buffers the
//! accelerator's DRAM model reasons about.

use crate::scene::Scene;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use splat_types::{Gaussian3d, Quat, Rgb, ShCoefficients, Vec3};
use std::fmt;

/// Magic bytes identifying the scene format.
const MAGIC: &[u8; 4] = b"GSTG";
/// Current format version.
const VERSION: u16 = 1;

/// Errors raised when decoding a binary scene.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared content was read.
    UnexpectedEof,
    /// A decoded field failed validation (e.g. opacity out of range).
    InvalidField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "buffer is not a GSTG scene"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported scene format version {v}"),
            DecodeError::UnexpectedEof => write!(f, "scene buffer ended unexpectedly"),
            DecodeError::InvalidField(name) => write!(f, "invalid field `{name}` in scene buffer"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a scene into the compact binary format.
pub fn encode_scene(scene: &Scene) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + scene.len() * 64);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    let name = scene.name().as_bytes();
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name);
    buf.put_u32_le(scene.width());
    buf.put_u32_le(scene.height());
    buf.put_u32_le(scene.len() as u32);
    for g in scene.iter() {
        put_vec3(&mut buf, g.position());
        put_vec3(&mut buf, g.scale());
        buf.put_f32_le(g.rotation().w);
        buf.put_f32_le(g.rotation().x);
        buf.put_f32_le(g.rotation().y);
        buf.put_f32_le(g.rotation().z);
        buf.put_f32_le(g.opacity());
        let coeffs = g.sh().coefficients();
        buf.put_u8(coeffs.len() as u8);
        for c in coeffs {
            buf.put_f32_le(c.r);
            buf.put_f32_le(c.g);
            buf.put_f32_le(c.b);
        }
    }
    buf.freeze()
}

/// Decodes a scene previously produced by [`encode_scene`].
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is truncated, has the wrong
/// magic/version, or contains out-of-domain parameter values.
pub fn decode_scene(mut buf: &[u8]) -> Result<Scene, DecodeError> {
    if buf.remaining() < 6 {
        return Err(DecodeError::UnexpectedEof);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    if buf.remaining() < 2 {
        return Err(DecodeError::UnexpectedEof);
    }
    let name_len = buf.get_u16_le() as usize;
    if buf.remaining() < name_len {
        return Err(DecodeError::UnexpectedEof);
    }
    let name_bytes = buf.copy_to_bytes(name_len);
    let name = String::from_utf8(name_bytes.to_vec())
        .map_err(|_| DecodeError::InvalidField("name"))?;
    if buf.remaining() < 12 {
        return Err(DecodeError::UnexpectedEof);
    }
    let width = buf.get_u32_le();
    let height = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;

    let mut gaussians = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < (3 + 3 + 4 + 1) * 4 + 1 {
            return Err(DecodeError::UnexpectedEof);
        }
        let position = get_vec3(&mut buf);
        let scale = get_vec3(&mut buf);
        let rotation = Quat::new(
            buf.get_f32_le(),
            buf.get_f32_le(),
            buf.get_f32_le(),
            buf.get_f32_le(),
        );
        let opacity = buf.get_f32_le();
        let coeff_count = buf.get_u8() as usize;
        if buf.remaining() < coeff_count * 12 {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut coeffs = Vec::with_capacity(coeff_count);
        for _ in 0..coeff_count {
            coeffs.push(Rgb::new(
                buf.get_f32_le(),
                buf.get_f32_le(),
                buf.get_f32_le(),
            ));
        }
        let sh = ShCoefficients::from_coefficients(coeffs)
            .map_err(|_| DecodeError::InvalidField("sh"))?;
        let gaussian = Gaussian3d::builder()
            .position(position)
            .scale(scale)
            .rotation(rotation)
            .opacity(opacity)
            .sh(sh)
            .try_build()
            .map_err(|_| DecodeError::InvalidField("gaussian"))?;
        gaussians.push(gaussian);
    }
    Ok(Scene::new(name, width, height, gaussians))
}

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f32_le(v.x);
    buf.put_f32_le(v.y);
    buf.put_f32_le(v.z);
}

fn get_vec3(buf: &mut &[u8]) -> Vec3 {
    Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SceneGenerator, SynthProfile};

    fn sample_scene() -> Scene {
        SceneGenerator::new(SynthProfile::default().with_count(64), 5).generate("sample", 320, 240)
    }

    #[test]
    fn round_trip_preserves_scene() {
        let scene = sample_scene();
        let encoded = encode_scene(&scene);
        let decoded = decode_scene(&encoded).expect("decodes");
        assert_eq!(decoded.name(), scene.name());
        assert_eq!(decoded.len(), scene.len());
        assert_eq!((decoded.width(), decoded.height()), (scene.width(), scene.height()));
        for (a, b) in decoded.iter().zip(scene.iter()) {
            // The builder re-normalizes the rotation on decode, which can
            // perturb the last mantissa bit, so compare with a tolerance.
            assert!((a.position() - b.position()).length() < 1e-6);
            assert!((a.scale() - b.scale()).length() < 1e-6);
            assert!((a.opacity() - b.opacity()).abs() < 1e-6);
            assert!((a.rotation().w - b.rotation().w).abs() < 1e-5);
            assert_eq!(a.sh().coefficients().len(), b.sh().coefficients().len());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_scene(&sample_scene()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_scene(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode_scene(&sample_scene()).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_scene(&bytes),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode_scene(&sample_scene());
        let truncated = &bytes[..bytes.len() / 2];
        assert_eq!(decode_scene(truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert_eq!(decode_scene(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn empty_scene_round_trips() {
        let scene = Scene::new("empty", 16, 16, vec![]);
        let decoded = decode_scene(&encode_scene(&scene)).unwrap();
        assert_eq!(decoded, scene);
    }

    #[test]
    fn decode_error_display_is_informative() {
        assert!(DecodeError::BadMagic.to_string().contains("GSTG"));
        assert!(DecodeError::InvalidField("sh").to_string().contains("sh"));
    }
}
