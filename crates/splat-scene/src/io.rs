//! Compact binary serialization of scenes.
//!
//! Scenes are large (hundreds of thousands of splats at the bigger scales),
//! so a simple length-prefixed binary layout is used. The format stores
//! every splat as fixed-width little-endian floats, mirroring the flat
//! parameter buffers the accelerator's DRAM model reasons about.

use crate::scene::Scene;
use splat_types::{Gaussian3d, Quat, Rgb, ShCoefficients, Vec3};
use std::fmt;

/// Magic bytes identifying the scene format.
const MAGIC: &[u8; 4] = b"GSTG";
/// Current format version.
const VERSION: u16 = 1;

/// Errors raised when decoding a binary scene.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared content was read.
    UnexpectedEof,
    /// A decoded field failed validation (e.g. opacity out of range).
    InvalidField(&'static str),
    /// A decoded splat parameter is NaN or infinite. Rejected at the
    /// loader boundary so non-finite geometry can never reach the
    /// renderers, where a NaN position or scale would poison depth sorting
    /// and blending.
    NonFinite(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "buffer is not a GSTG scene"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported scene format version {v}"),
            DecodeError::UnexpectedEof => write!(f, "scene buffer ended unexpectedly"),
            DecodeError::InvalidField(name) => write!(f, "invalid field `{name}` in scene buffer"),
            DecodeError::NonFinite(name) => {
                write!(f, "non-finite `{name}` in scene buffer (NaN or infinity)")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a scene into the compact binary format.
pub fn encode_scene(scene: &Scene) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::with_capacity(64 + scene.len() * 64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let name = scene.name().as_bytes();
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name);
    buf.extend_from_slice(&scene.width().to_le_bytes());
    buf.extend_from_slice(&scene.height().to_le_bytes());
    buf.extend_from_slice(&(scene.len() as u32).to_le_bytes());
    for g in scene.iter() {
        put_vec3(&mut buf, g.position());
        put_vec3(&mut buf, g.scale());
        put_f32(&mut buf, g.rotation().w);
        put_f32(&mut buf, g.rotation().x);
        put_f32(&mut buf, g.rotation().y);
        put_f32(&mut buf, g.rotation().z);
        put_f32(&mut buf, g.opacity());
        let coeffs = g.sh().coefficients();
        buf.push(coeffs.len() as u8);
        for c in coeffs {
            put_f32(&mut buf, c.r);
            put_f32(&mut buf, c.g);
            put_f32(&mut buf, c.b);
        }
    }
    buf
}

/// Decodes a scene previously produced by [`encode_scene`].
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer is truncated, has the wrong
/// magic/version, or contains out-of-domain parameter values.
pub fn decode_scene(buf: &[u8]) -> Result<Scene, DecodeError> {
    let mut reader = Reader { buf };
    let magic = reader.take(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = reader.get_u16_le()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let name_len = reader.get_u16_le()? as usize;
    let name = String::from_utf8(reader.take(name_len)?.to_vec())
        .map_err(|_| DecodeError::InvalidField("name"))?;
    let width = reader.get_u32_le()?;
    let height = reader.get_u32_le()?;
    let count = reader.get_u32_le()? as usize;

    let mut gaussians = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let position = get_vec3(&mut reader)?;
        if !position.is_finite() {
            return Err(DecodeError::NonFinite("position"));
        }
        let scale = get_vec3(&mut reader)?;
        if !scale.is_finite() {
            return Err(DecodeError::NonFinite("scale"));
        }
        if !(scale.x > 0.0 && scale.y > 0.0 && scale.z > 0.0) {
            return Err(DecodeError::InvalidField("scale"));
        }
        let rotation = Quat::new(
            reader.get_f32_le()?,
            reader.get_f32_le()?,
            reader.get_f32_le()?,
            reader.get_f32_le()?,
        );
        if !(rotation.w.is_finite()
            && rotation.x.is_finite()
            && rotation.y.is_finite()
            && rotation.z.is_finite())
        {
            return Err(DecodeError::NonFinite("rotation"));
        }
        // A near-zero quaternion cannot be normalized into a rotation:
        // downstream it would either divide to NaN or be silently rewritten
        // to the identity — a different splat than the buffer declared.
        // Reject it here instead.
        if rotation.norm() <= f32::EPSILON {
            return Err(DecodeError::InvalidField("rotation"));
        }
        let opacity = reader.get_f32_le()?;
        if !opacity.is_finite() {
            return Err(DecodeError::NonFinite("opacity"));
        }
        if !(0.0..=1.0).contains(&opacity) {
            return Err(DecodeError::InvalidField("opacity"));
        }
        let coeff_count = reader.get_u8()? as usize;
        let mut coeffs = Vec::with_capacity(coeff_count);
        for _ in 0..coeff_count {
            let coeff = Rgb::new(
                reader.get_f32_le()?,
                reader.get_f32_le()?,
                reader.get_f32_le()?,
            );
            if !(coeff.r.is_finite() && coeff.g.is_finite() && coeff.b.is_finite()) {
                return Err(DecodeError::NonFinite("sh"));
            }
            coeffs.push(coeff);
        }
        let sh = ShCoefficients::from_coefficients(coeffs)
            .map_err(|_| DecodeError::InvalidField("sh"))?;
        let gaussian = Gaussian3d::builder()
            .position(position)
            .scale(scale)
            .rotation(rotation)
            .opacity(opacity)
            .sh(sh)
            .try_build()
            .map_err(|_| DecodeError::InvalidField("gaussian"))?;
        gaussians.push(gaussian);
    }
    Ok(Scene::new(name, width, height, gaussians))
}

/// Bounds-checked little-endian reader over the input buffer.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16_le(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_f32_le(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.get_u32_le()?))
    }
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_vec3(buf: &mut Vec<u8>, v: Vec3) {
    put_f32(buf, v.x);
    put_f32(buf, v.y);
    put_f32(buf, v.z);
}

fn get_vec3(reader: &mut Reader<'_>) -> Result<Vec3, DecodeError> {
    Ok(Vec3::new(
        reader.get_f32_le()?,
        reader.get_f32_le()?,
        reader.get_f32_le()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SceneGenerator, SynthProfile};

    fn sample_scene() -> Scene {
        SceneGenerator::new(SynthProfile::default().with_count(64), 5).generate("sample", 320, 240)
    }

    #[test]
    fn round_trip_preserves_scene() {
        let scene = sample_scene();
        let encoded = encode_scene(&scene);
        let decoded = decode_scene(&encoded).expect("decodes");
        assert_eq!(decoded.name(), scene.name());
        assert_eq!(decoded.len(), scene.len());
        assert_eq!(
            (decoded.width(), decoded.height()),
            (scene.width(), scene.height())
        );
        for (a, b) in decoded.iter().zip(scene.iter()) {
            // The builder re-normalizes the rotation on decode, which can
            // perturb the last mantissa bit, so compare with a tolerance.
            assert!((a.position() - b.position()).length() < 1e-6);
            assert!((a.scale() - b.scale()).length() < 1e-6);
            assert!((a.opacity() - b.opacity()).abs() < 1e-6);
            assert!((a.rotation().w - b.rotation().w).abs() < 1e-5);
            assert_eq!(a.sh().coefficients().len(), b.sh().coefficients().len());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_scene(&sample_scene()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_scene(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode_scene(&sample_scene()).to_vec();
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_scene(&bytes),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode_scene(&sample_scene());
        let truncated = &bytes[..bytes.len() / 2];
        assert_eq!(decode_scene(truncated), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn empty_buffer_is_rejected() {
        assert_eq!(decode_scene(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn empty_scene_round_trips() {
        let scene = Scene::new("empty", 16, 16, vec![]);
        let decoded = decode_scene(&encode_scene(&scene)).unwrap();
        assert_eq!(decoded, scene);
    }

    #[test]
    fn decode_error_display_is_informative() {
        assert!(DecodeError::BadMagic.to_string().contains("GSTG"));
        assert!(DecodeError::InvalidField("sh").to_string().contains("sh"));
        assert!(DecodeError::NonFinite("scale")
            .to_string()
            .contains("non-finite `scale`"));
    }

    /// Byte offset of the first splat's parameters in an encoded buffer:
    /// magic (4) + version (2) + name length (2) + name + width (4) +
    /// height (4) + count (4).
    fn first_splat_offset(scene: &Scene) -> usize {
        4 + 2 + 2 + scene.name().len() + 4 + 4 + 4
    }

    fn patch_f32(bytes: &mut [u8], offset: usize, value: f32) {
        bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    #[test]
    fn out_of_domain_parameters_are_rejected_at_the_loader_boundary() {
        let scene = sample_scene();
        let base = first_splat_offset(&scene);
        // Finite but out-of-domain values must be refused with the
        // offending field, not the catch-all `gaussian` error (and never
        // silently rewritten): opacity outside [0, 1], non-positive scale.
        let cases = [
            ("opacity", 40, 1.5),
            ("opacity", 40, -0.25),
            ("scale", 12, 0.0),
            ("scale", 16, -1.0),
        ];
        for (field, offset, value) in cases {
            let mut bytes = encode_scene(&scene);
            patch_f32(&mut bytes, base + offset, value);
            assert_eq!(
                decode_scene(&bytes),
                Err(DecodeError::InvalidField(field)),
                "out-of-domain {field} = {value} must be rejected"
            );
        }
    }

    #[test]
    fn zero_quaternion_is_rejected_not_rewritten() {
        // A zero rotation quaternion cannot be normalized; earlier versions
        // let it through and the builder silently rewrote it to the
        // identity — a different splat than the buffer declared.
        let scene = sample_scene();
        let base = first_splat_offset(&scene);
        let mut bytes = encode_scene(&scene);
        for component in 0..4 {
            patch_f32(&mut bytes, base + 24 + component * 4, 0.0);
        }
        assert_eq!(
            decode_scene(&bytes),
            Err(DecodeError::InvalidField("rotation"))
        );
    }

    #[test]
    fn non_finite_parameters_are_rejected_with_the_offending_field() {
        let scene = sample_scene();
        let base = first_splat_offset(&scene);
        // (field name, byte offset within the splat record, poison value):
        // position (12 B), scale (12 B), rotation (16 B), opacity (4 B),
        // SH count (1 B), then the SH coefficients.
        let cases = [
            ("position", 0, f32::NAN),
            ("scale", 12, f32::INFINITY),
            ("rotation", 24, f32::NEG_INFINITY),
            ("opacity", 40, f32::NAN),
            ("sh", 45, f32::NAN),
        ];
        for (field, offset, poison) in cases {
            let mut bytes = encode_scene(&scene);
            patch_f32(&mut bytes, base + offset, poison);
            assert_eq!(
                decode_scene(&bytes),
                Err(DecodeError::NonFinite(field)),
                "poisoned {field} must be rejected as non-finite"
            );
        }
    }
}
