//! The [`Scene`] container holding a cloud of 3D Gaussian splats.

use crate::stats::SceneStats;
use splat_types::{Gaussian3d, Mat3, Precision, Quat, Rgb, Vec3};
use std::sync::{Arc, OnceLock};

/// Structure-of-arrays view of a scene's splat parameters.
///
/// Each component lives in its own contiguous array so chunked (SIMD)
/// projection kernels can load lanes straight from memory instead of
/// gathering fields out of [`Gaussian3d`] records. Spherical-harmonic
/// coefficients are flattened basis-major into one array, indexed through
/// a `len + 1` offset table (splats may carry different SH degrees).
///
/// The view is derived data: it is built lazily from the AoS storage via
/// [`Scene::soa`] and holds exactly the same values, so any kernel
/// consuming it is bit-identical to one reading the records directly.
///
/// Besides the raw splat parameters the view caches each splat's
/// view-independent 3D covariance `R·S·Sᵀ·Rᵀ`
/// ([`Gaussian3d::covariance_of`]), so per-frame preprocessing does not
/// recompute the rotation-matrix products for every camera pose. All nine
/// entries are stored — f32 matrix products are not guaranteed to round
/// symmetrically, and [`SceneSoA::covariance`] must reproduce the original
/// matrix bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneSoA {
    pos_x: Vec<f32>,
    pos_y: Vec<f32>,
    pos_z: Vec<f32>,
    scale_x: Vec<f32>,
    scale_y: Vec<f32>,
    scale_z: Vec<f32>,
    rot_w: Vec<f32>,
    rot_x: Vec<f32>,
    rot_y: Vec<f32>,
    rot_z: Vec<f32>,
    opacity: Vec<f32>,
    cov: [Vec<f32>; 9],
    sh_degree: Vec<u8>,
    sh_coeffs: Vec<Rgb>,
    sh_offsets: Vec<u32>,
}

impl SceneSoA {
    /// Transposes AoS splat records into component arrays.
    pub fn from_gaussians(gaussians: &[Gaussian3d]) -> Self {
        let n = gaussians.len();
        let mut soa = Self {
            pos_x: Vec::with_capacity(n),
            pos_y: Vec::with_capacity(n),
            pos_z: Vec::with_capacity(n),
            scale_x: Vec::with_capacity(n),
            scale_y: Vec::with_capacity(n),
            scale_z: Vec::with_capacity(n),
            rot_w: Vec::with_capacity(n),
            rot_x: Vec::with_capacity(n),
            rot_y: Vec::with_capacity(n),
            rot_z: Vec::with_capacity(n),
            opacity: Vec::with_capacity(n),
            cov: std::array::from_fn(|_| Vec::with_capacity(n)),
            sh_degree: Vec::with_capacity(n),
            sh_coeffs: Vec::new(),
            sh_offsets: Vec::with_capacity(n + 1),
        };
        soa.sh_offsets.push(0);
        for g in gaussians {
            let p = g.position();
            soa.pos_x.push(p.x);
            soa.pos_y.push(p.y);
            soa.pos_z.push(p.z);
            let s = g.scale();
            soa.scale_x.push(s.x);
            soa.scale_y.push(s.y);
            soa.scale_z.push(s.z);
            let q = g.rotation();
            soa.rot_w.push(q.w);
            soa.rot_x.push(q.x);
            soa.rot_y.push(q.y);
            soa.rot_z.push(q.z);
            soa.opacity.push(g.opacity());
            let cov = Gaussian3d::covariance_of(s, q);
            for (r, row) in soa.cov.chunks_exact_mut(3).enumerate() {
                for (c, column) in row.iter_mut().enumerate() {
                    column.push(cov.at(r, c));
                }
            }
            soa.sh_degree.push(g.sh().degree() as u8);
            soa.sh_coeffs.extend_from_slice(g.sh().coefficients());
            soa.sh_offsets.push(soa.sh_coeffs.len() as u32);
        }
        soa
    }

    /// Number of splats.
    #[inline]
    pub fn len(&self) -> usize {
        self.opacity.len()
    }

    /// Returns `true` when the view holds no splats.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.opacity.is_empty()
    }

    /// Position X components.
    #[inline]
    pub fn pos_x(&self) -> &[f32] {
        &self.pos_x
    }

    /// Position Y components.
    #[inline]
    pub fn pos_y(&self) -> &[f32] {
        &self.pos_y
    }

    /// Position Z components.
    #[inline]
    pub fn pos_z(&self) -> &[f32] {
        &self.pos_z
    }

    /// Reassembled position of splat `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Vec3 {
        Vec3::new(self.pos_x[i], self.pos_y[i], self.pos_z[i])
    }

    /// Reassembled scale of splat `i`.
    #[inline]
    pub fn scale(&self, i: usize) -> Vec3 {
        Vec3::new(self.scale_x[i], self.scale_y[i], self.scale_z[i])
    }

    /// Reassembled rotation of splat `i`.
    #[inline]
    pub fn rotation(&self, i: usize) -> Quat {
        Quat::new(self.rot_w[i], self.rot_x[i], self.rot_y[i], self.rot_z[i])
    }

    /// Opacity values.
    #[inline]
    pub fn opacity(&self) -> &[f32] {
        &self.opacity
    }

    /// Cached view-independent 3D covariance of splat `i`, bit-identical
    /// to recomputing [`Gaussian3d::covariance_of`] from the splat's scale
    /// and rotation.
    #[inline]
    pub fn covariance(&self, i: usize) -> Mat3 {
        Mat3::from_rows(
            self.cov[0][i],
            self.cov[1][i],
            self.cov[2][i],
            self.cov[3][i],
            self.cov[4][i],
            self.cov[5][i],
            self.cov[6][i],
            self.cov[7][i],
            self.cov[8][i],
        )
    }

    /// SH degree of splat `i`.
    #[inline]
    pub fn sh_degree(&self, i: usize) -> usize {
        self.sh_degree[i] as usize
    }

    /// Flattened basis-major SH coefficients of splat `i`.
    #[inline]
    pub fn sh_coefficients(&self, i: usize) -> &[Rgb] {
        &self.sh_coeffs[self.sh_offsets[i] as usize..self.sh_offsets[i + 1] as usize]
    }

    /// Resident-memory estimate of the component arrays in bytes. This is
    /// derived-data overhead on top of [`Scene::footprint_bytes`]; the
    /// serving engine reports it separately so residency budgets keep
    /// their historical meaning.
    pub fn footprint_bytes(&self) -> usize {
        // 3 pos + 3 scale + 4 rot + 1 opacity + 9 cached covariance.
        let f32s = self.pos_x.len() * 20;
        f32s * std::mem::size_of::<f32>()
            + self.sh_degree.len()
            + self.sh_coeffs.len() * std::mem::size_of::<Rgb>()
            + self.sh_offsets.len() * std::mem::size_of::<u32>()
    }
}

/// A named collection of 3D Gaussians plus the output resolution the scene
/// is rendered at.
///
/// A `Scene` is the unit of input to both the software rendering pipelines
/// and the accelerator simulator.
#[derive(Debug, Clone)]
pub struct Scene {
    name: String,
    width: u32,
    height: u32,
    gaussians: Vec<Gaussian3d>,
    soa: OnceLock<Arc<SceneSoA>>,
}

impl PartialEq for Scene {
    fn eq(&self, other: &Self) -> bool {
        // The SoA cache is derived data; equality is over the source splats.
        self.name == other.name
            && self.width == other.width
            && self.height == other.height
            && self.gaussians == other.gaussians
    }
}

impl Scene {
    /// Creates a scene from its parts.
    pub fn new(
        name: impl Into<String>,
        width: u32,
        height: u32,
        gaussians: Vec<Gaussian3d>,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            gaussians,
            soa: OnceLock::new(),
        }
    }

    /// Structure-of-arrays view of the splats, built on first access and
    /// cached for the lifetime of the scene. The `Arc` lets render
    /// pipelines hold the view without borrowing the scene.
    pub fn soa(&self) -> &Arc<SceneSoA> {
        self.soa
            .get_or_init(|| Arc::new(SceneSoA::from_gaussians(&self.gaussians)))
    }

    /// Scene name (e.g. `"train"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Output image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The splats of the scene.
    #[inline]
    pub fn gaussians(&self) -> &[Gaussian3d] {
        &self.gaussians
    }

    /// Number of splats.
    #[inline]
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// Returns `true` when the scene holds no splats.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Iterates over the splats.
    pub fn iter(&self) -> std::slice::Iter<'_, Gaussian3d> {
        self.gaussians.iter()
    }

    /// Returns a copy of the scene with every splat converted to the given
    /// storage precision (the paper converts models to fp16 for the
    /// accelerator).
    pub fn to_precision(&self, precision: Precision) -> Self {
        Self::new(
            self.name.clone(),
            self.width,
            self.height,
            self.gaussians
                .iter()
                .map(|g| g.to_precision(precision))
                .collect(),
        )
    }

    /// Axis-aligned bounds of all splat centers, or `None` for an empty
    /// scene.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut iter = self.gaussians.iter();
        let first = iter.next()?.position();
        let mut lo = first;
        let mut hi = first;
        for g in iter {
            lo = lo.min(g.position());
            hi = hi.max(g.position());
        }
        Some((lo, hi))
    }

    /// Centroid of all splat centers, or the origin for an empty scene.
    pub fn centroid(&self) -> Vec3 {
        if self.gaussians.is_empty() {
            return Vec3::ZERO;
        }
        let sum = self
            .gaussians
            .iter()
            .fold(Vec3::ZERO, |acc, g| acc + g.position());
        sum / self.gaussians.len() as f32
    }

    /// Summary statistics of the splat population.
    pub fn stats(&self) -> SceneStats {
        SceneStats::from_scene(self)
    }

    /// Resident-memory estimate of the scene in bytes: every stored
    /// parameter scalar ([`Gaussian3d::parameter_count`]) at 4 bytes, plus
    /// the name. This is the figure the serving engine's residency policy
    /// budgets against, so it is deterministic for a given scene — it does
    /// not try to account for allocator or container overhead.
    pub fn footprint_bytes(&self) -> usize {
        let splat_bytes: usize = self
            .gaussians
            .iter()
            .map(|g| g.parameter_count() * std::mem::size_of::<f32>())
            .sum();
        splat_bytes + self.name.len()
    }

    /// Returns a scene containing only the first `n` splats, preserving
    /// name and resolution. Useful for scaled-down smoke tests.
    pub fn truncated(&self, n: usize) -> Self {
        Self::new(
            self.name.clone(),
            self.width,
            self.height,
            self.gaussians.iter().take(n).cloned().collect(),
        )
    }
}

impl<'a> IntoIterator for &'a Scene {
    type Item = &'a Gaussian3d;
    type IntoIter = std::slice::Iter<'a, Gaussian3d>;

    fn into_iter(self) -> Self::IntoIter {
        self.gaussians.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splat_types::Quat;

    fn splat_at(p: Vec3) -> Gaussian3d {
        Gaussian3d::builder()
            .position(p)
            .scale(Vec3::splat(0.1))
            .rotation(Quat::IDENTITY)
            .opacity(0.5)
            .base_color([0.5, 0.5, 0.5])
            .build()
    }

    #[test]
    fn bounds_cover_all_centers() {
        let scene = Scene::new(
            "test",
            64,
            64,
            vec![
                splat_at(Vec3::new(-1.0, 0.0, 2.0)),
                splat_at(Vec3::new(3.0, -2.0, 5.0)),
                splat_at(Vec3::new(0.0, 4.0, 1.0)),
            ],
        );
        let (lo, hi) = scene.bounds().unwrap();
        assert_eq!(lo, Vec3::new(-1.0, -2.0, 1.0));
        assert_eq!(hi, Vec3::new(3.0, 4.0, 5.0));
    }

    #[test]
    fn empty_scene_has_no_bounds() {
        let scene = Scene::new("empty", 8, 8, vec![]);
        assert!(scene.bounds().is_none());
        assert!(scene.is_empty());
        assert_eq!(scene.centroid(), Vec3::ZERO);
    }

    #[test]
    fn centroid_is_mean_of_centers() {
        let scene = Scene::new(
            "test",
            64,
            64,
            vec![
                splat_at(Vec3::new(0.0, 0.0, 0.0)),
                splat_at(Vec3::new(2.0, 4.0, 6.0)),
            ],
        );
        assert_eq!(scene.centroid(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn truncated_keeps_resolution() {
        let scene = Scene::new(
            "test",
            640,
            480,
            (0..10).map(|i| splat_at(Vec3::splat(i as f32))).collect(),
        );
        let t = scene.truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.width(), 640);
        assert_eq!(t.height(), 480);
    }

    #[test]
    fn precision_conversion_preserves_count() {
        let scene = Scene::new(
            "test",
            64,
            64,
            (0..5)
                .map(|i| splat_at(Vec3::splat(i as f32 * 0.1)))
                .collect(),
        );
        let half = scene.to_precision(Precision::Half);
        assert_eq!(half.len(), scene.len());
        assert_eq!(half.name(), "test");
    }

    #[test]
    fn footprint_scales_with_splats_and_counts_all_parameters() {
        let empty = Scene::new("e", 8, 8, vec![]);
        assert_eq!(empty.footprint_bytes(), 1, "just the name");
        let one = Scene::new("e", 8, 8, vec![splat_at(Vec3::ZERO)]);
        // Degree-0 SH splat: 3+3+4+1+3 = 14 scalars at 4 bytes.
        assert_eq!(one.footprint_bytes(), 1 + 14 * 4);
        let ten = Scene::new("e", 8, 8, (0..10).map(|_| splat_at(Vec3::ZERO)).collect());
        assert_eq!(ten.footprint_bytes(), 1 + 10 * 14 * 4);
    }

    #[test]
    fn soa_view_matches_aos_storage_bit_exactly() {
        let scene = Scene::new(
            "test",
            64,
            64,
            (0..17)
                .map(|i| {
                    Gaussian3d::builder()
                        .position(Vec3::new(i as f32 * 0.3, -(i as f32) * 0.7, 1.0 + i as f32))
                        .scale(Vec3::new(0.1, 0.2 + i as f32 * 0.01, 0.3))
                        .rotation(Quat::from_axis_angle(Vec3::Y, i as f32 * 0.2))
                        .opacity(0.1 + 0.05 * i as f32 % 0.9)
                        .base_color([0.2, 0.4, 0.6])
                        .build()
                })
                .collect(),
        );
        let soa = scene.soa();
        assert_eq!(soa.len(), scene.len());
        for (i, g) in scene.iter().enumerate() {
            assert_eq!(soa.position(i), g.position());
            assert_eq!(soa.scale(i), g.scale());
            assert_eq!(soa.rotation(i), g.rotation());
            assert_eq!(soa.opacity()[i].to_bits(), g.opacity().to_bits());
            assert_eq!(soa.sh_degree(i), g.sh().degree());
            assert_eq!(soa.sh_coefficients(i), g.sh().coefficients());
            let fresh = Gaussian3d::covariance_of(g.scale(), g.rotation());
            let cached = soa.covariance(i);
            for r in 0..3 {
                for c in 0..3 {
                    assert_eq!(
                        cached.at(r, c).to_bits(),
                        fresh.at(r, c).to_bits(),
                        "covariance entry ({r},{c}) of splat {i} must be cached bit-exactly"
                    );
                }
            }
        }
    }

    #[test]
    fn soa_is_cached_and_excluded_from_equality() {
        let scene = Scene::new("test", 8, 8, vec![splat_at(Vec3::ZERO)]);
        let fresh = scene.clone();
        let a = Arc::as_ptr(scene.soa());
        let b = Arc::as_ptr(scene.soa());
        assert_eq!(a, b, "second access must return the cached view");
        // Building the view on one copy must not affect equality.
        assert_eq!(scene, fresh);
    }

    #[test]
    fn soa_footprint_counts_every_component_array() {
        let scene = Scene::new("e", 8, 8, (0..10).map(|_| splat_at(Vec3::ZERO)).collect());
        // Degree-0: 11 parameter f32s + 9 cached covariance f32s + 1
        // degree byte + 1 Rgb coefficient per splat, plus the 11-entry u32
        // offset table (len + 1) and its leading zero.
        let expected = 10 * (20 * 4 + 1 + 12) + 11 * 4;
        assert_eq!(scene.soa().footprint_bytes(), expected);
    }

    #[test]
    fn iteration_visits_every_splat() {
        let scene = Scene::new(
            "test",
            64,
            64,
            (0..7).map(|i| splat_at(Vec3::splat(i as f32))).collect(),
        );
        assert_eq!(scene.iter().count(), 7);
        assert_eq!((&scene).into_iter().count(), 7);
    }
}
