//! The [`Scene`] container holding a cloud of 3D Gaussian splats.

use crate::stats::SceneStats;
use splat_types::{Gaussian3d, Precision, Vec3};

/// A named collection of 3D Gaussians plus the output resolution the scene
/// is rendered at.
///
/// A `Scene` is the unit of input to both the software rendering pipelines
/// and the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    name: String,
    width: u32,
    height: u32,
    gaussians: Vec<Gaussian3d>,
}

impl Scene {
    /// Creates a scene from its parts.
    pub fn new(
        name: impl Into<String>,
        width: u32,
        height: u32,
        gaussians: Vec<Gaussian3d>,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            gaussians,
        }
    }

    /// Scene name (e.g. `"train"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Output image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The splats of the scene.
    #[inline]
    pub fn gaussians(&self) -> &[Gaussian3d] {
        &self.gaussians
    }

    /// Number of splats.
    #[inline]
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// Returns `true` when the scene holds no splats.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Iterates over the splats.
    pub fn iter(&self) -> std::slice::Iter<'_, Gaussian3d> {
        self.gaussians.iter()
    }

    /// Returns a copy of the scene with every splat converted to the given
    /// storage precision (the paper converts models to fp16 for the
    /// accelerator).
    pub fn to_precision(&self, precision: Precision) -> Self {
        Self {
            name: self.name.clone(),
            width: self.width,
            height: self.height,
            gaussians: self
                .gaussians
                .iter()
                .map(|g| g.to_precision(precision))
                .collect(),
        }
    }

    /// Axis-aligned bounds of all splat centers, or `None` for an empty
    /// scene.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut iter = self.gaussians.iter();
        let first = iter.next()?.position();
        let mut lo = first;
        let mut hi = first;
        for g in iter {
            lo = lo.min(g.position());
            hi = hi.max(g.position());
        }
        Some((lo, hi))
    }

    /// Centroid of all splat centers, or the origin for an empty scene.
    pub fn centroid(&self) -> Vec3 {
        if self.gaussians.is_empty() {
            return Vec3::ZERO;
        }
        let sum = self
            .gaussians
            .iter()
            .fold(Vec3::ZERO, |acc, g| acc + g.position());
        sum / self.gaussians.len() as f32
    }

    /// Summary statistics of the splat population.
    pub fn stats(&self) -> SceneStats {
        SceneStats::from_scene(self)
    }

    /// Resident-memory estimate of the scene in bytes: every stored
    /// parameter scalar ([`Gaussian3d::parameter_count`]) at 4 bytes, plus
    /// the name. This is the figure the serving engine's residency policy
    /// budgets against, so it is deterministic for a given scene — it does
    /// not try to account for allocator or container overhead.
    pub fn footprint_bytes(&self) -> usize {
        let splat_bytes: usize = self
            .gaussians
            .iter()
            .map(|g| g.parameter_count() * std::mem::size_of::<f32>())
            .sum();
        splat_bytes + self.name.len()
    }

    /// Returns a scene containing only the first `n` splats, preserving
    /// name and resolution. Useful for scaled-down smoke tests.
    pub fn truncated(&self, n: usize) -> Self {
        Self {
            name: self.name.clone(),
            width: self.width,
            height: self.height,
            gaussians: self.gaussians.iter().take(n).cloned().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Scene {
    type Item = &'a Gaussian3d;
    type IntoIter = std::slice::Iter<'a, Gaussian3d>;

    fn into_iter(self) -> Self::IntoIter {
        self.gaussians.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splat_types::Quat;

    fn splat_at(p: Vec3) -> Gaussian3d {
        Gaussian3d::builder()
            .position(p)
            .scale(Vec3::splat(0.1))
            .rotation(Quat::IDENTITY)
            .opacity(0.5)
            .base_color([0.5, 0.5, 0.5])
            .build()
    }

    #[test]
    fn bounds_cover_all_centers() {
        let scene = Scene::new(
            "test",
            64,
            64,
            vec![
                splat_at(Vec3::new(-1.0, 0.0, 2.0)),
                splat_at(Vec3::new(3.0, -2.0, 5.0)),
                splat_at(Vec3::new(0.0, 4.0, 1.0)),
            ],
        );
        let (lo, hi) = scene.bounds().unwrap();
        assert_eq!(lo, Vec3::new(-1.0, -2.0, 1.0));
        assert_eq!(hi, Vec3::new(3.0, 4.0, 5.0));
    }

    #[test]
    fn empty_scene_has_no_bounds() {
        let scene = Scene::new("empty", 8, 8, vec![]);
        assert!(scene.bounds().is_none());
        assert!(scene.is_empty());
        assert_eq!(scene.centroid(), Vec3::ZERO);
    }

    #[test]
    fn centroid_is_mean_of_centers() {
        let scene = Scene::new(
            "test",
            64,
            64,
            vec![
                splat_at(Vec3::new(0.0, 0.0, 0.0)),
                splat_at(Vec3::new(2.0, 4.0, 6.0)),
            ],
        );
        assert_eq!(scene.centroid(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn truncated_keeps_resolution() {
        let scene = Scene::new(
            "test",
            640,
            480,
            (0..10).map(|i| splat_at(Vec3::splat(i as f32))).collect(),
        );
        let t = scene.truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.width(), 640);
        assert_eq!(t.height(), 480);
    }

    #[test]
    fn precision_conversion_preserves_count() {
        let scene = Scene::new(
            "test",
            64,
            64,
            (0..5)
                .map(|i| splat_at(Vec3::splat(i as f32 * 0.1)))
                .collect(),
        );
        let half = scene.to_precision(Precision::Half);
        assert_eq!(half.len(), scene.len());
        assert_eq!(half.name(), "test");
    }

    #[test]
    fn footprint_scales_with_splats_and_counts_all_parameters() {
        let empty = Scene::new("e", 8, 8, vec![]);
        assert_eq!(empty.footprint_bytes(), 1, "just the name");
        let one = Scene::new("e", 8, 8, vec![splat_at(Vec3::ZERO)]);
        // Degree-0 SH splat: 3+3+4+1+3 = 14 scalars at 4 bytes.
        assert_eq!(one.footprint_bytes(), 1 + 14 * 4);
        let ten = Scene::new("e", 8, 8, (0..10).map(|_| splat_at(Vec3::ZERO)).collect());
        assert_eq!(ten.footprint_bytes(), 1 + 10 * 14 * 4);
    }

    #[test]
    fn iteration_visits_every_splat() {
        let scene = Scene::new(
            "test",
            64,
            64,
            (0..7).map(|i| splat_at(Vec3::splat(i as f32))).collect(),
        );
        assert_eq!(scene.iter().count(), 7);
        assert_eq!((&scene).into_iter().count(), 7);
    }
}
