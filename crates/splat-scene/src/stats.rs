//! Summary statistics of a splat population.

use crate::scene::Scene;

/// Aggregate statistics of a [`Scene`]'s splat population, used to sanity
/// check the synthetic generators against the regimes the paper's scenes
/// operate in.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneStats {
    /// Number of splats.
    pub count: usize,
    /// Mean of the per-splat maximum scale axis.
    pub mean_max_scale: f32,
    /// Median of the per-splat maximum scale axis.
    pub median_max_scale: f32,
    /// 95th percentile of the per-splat maximum scale axis.
    pub p95_max_scale: f32,
    /// Mean opacity.
    pub mean_opacity: f32,
    /// Fraction of splats with opacity at least 0.9.
    pub opaque_fraction: f32,
    /// Mean depth (Z coordinate) of splat centers.
    pub mean_depth: f32,
    /// Extent of the bounding box diagonal.
    pub bounds_diagonal: f32,
}

impl SceneStats {
    /// Computes statistics for a scene. All fields are zero for an empty
    /// scene.
    pub fn from_scene(scene: &Scene) -> Self {
        if scene.is_empty() {
            return Self {
                count: 0,
                mean_max_scale: 0.0,
                median_max_scale: 0.0,
                p95_max_scale: 0.0,
                mean_opacity: 0.0,
                opaque_fraction: 0.0,
                mean_depth: 0.0,
                bounds_diagonal: 0.0,
            };
        }
        let n = scene.len() as f32;
        let mut max_scales: Vec<f32> = scene.iter().map(|g| g.scale().max_component()).collect();
        max_scales.sort_by(f32::total_cmp);
        let mean_max_scale = max_scales.iter().sum::<f32>() / n;
        let median_max_scale = percentile(&max_scales, 0.5);
        let p95_max_scale = percentile(&max_scales, 0.95);
        let mean_opacity = scene.iter().map(|g| g.opacity()).sum::<f32>() / n;
        let opaque_fraction = scene.iter().filter(|g| g.opacity() >= 0.9).count() as f32 / n;
        let mean_depth = scene.iter().map(|g| g.position().z).sum::<f32>() / n;
        let bounds_diagonal = scene
            .bounds()
            .map(|(lo, hi)| (hi - lo).length())
            .unwrap_or(0.0);
        Self {
            count: scene.len(),
            mean_max_scale,
            median_max_scale,
            p95_max_scale,
            mean_opacity,
            opaque_fraction,
            mean_depth,
            bounds_diagonal,
        }
    }
}

/// Linear-interpolated percentile of a sorted slice. `q` in `[0, 1]`.
fn percentile(sorted: &[f32], q: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f32;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splat_types::{Gaussian3d, Vec3};

    fn splat(scale: f32, opacity: f32, z: f32) -> Gaussian3d {
        Gaussian3d::builder()
            .position(Vec3::new(0.0, 0.0, z))
            .scale(Vec3::splat(scale))
            .opacity(opacity)
            .build()
    }

    #[test]
    fn empty_scene_stats_are_zero() {
        let stats = SceneStats::from_scene(&Scene::new("e", 8, 8, vec![]));
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_opacity, 0.0);
    }

    #[test]
    fn stats_match_hand_computed_values() {
        let scene = Scene::new(
            "s",
            8,
            8,
            vec![
                splat(0.1, 1.0, 1.0),
                splat(0.3, 0.5, 3.0),
                splat(0.2, 0.95, 2.0),
            ],
        );
        let stats = scene.stats();
        assert_eq!(stats.count, 3);
        assert!((stats.mean_max_scale - 0.2).abs() < 1e-6);
        assert!((stats.median_max_scale - 0.2).abs() < 1e-6);
        assert!((stats.mean_opacity - (1.0 + 0.5 + 0.95) / 3.0).abs() < 1e-6);
        assert!((stats.opaque_fraction - 2.0 / 3.0).abs() < 1e-6);
        assert!((stats.mean_depth - 2.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
