//! Property-style coverage of the binary `.splat` codec: round-trips
//! across seeds, profiles and SH degrees; exhaustive truncation and
//! single-byte corruption sweeps that must always land in a typed
//! [`DecodeError`] — never a panic, and never an invalid scene.
//!
//! The upload endpoint of `splat-serve` feeds untrusted bytes straight
//! into [`decode_scene`], so this file is the fuzz-shaped contract the
//! network front door relies on.

use splat_scene::io::{decode_scene, encode_scene, DecodeError};
use splat_scene::{Scene, SceneGenerator, SynthProfile};

fn synth(seed: u64, count: usize, sh_degree: usize) -> Scene {
    let mut profile = SynthProfile::default().with_count(count);
    profile.sh_degree = sh_degree;
    SceneGenerator::new(profile, seed).generate(format!("prop-{seed}-{count}"), 128, 96)
}

/// The loader boundary's validity invariant: everything a successful
/// decode returns is renderable (finite, in-domain, normalizable).
fn assert_valid(scene: &Scene) {
    for gaussian in scene.iter() {
        assert!(gaussian.position().is_finite());
        assert!(gaussian.scale().is_finite());
        assert!(gaussian.scale().x > 0.0 && gaussian.scale().y > 0.0 && gaussian.scale().z > 0.0);
        assert!((0.0..=1.0).contains(&gaussian.opacity()));
        assert!(gaussian.rotation().norm() > f32::EPSILON);
        for coeff in gaussian.sh().coefficients() {
            assert!(coeff.r.is_finite() && coeff.g.is_finite() && coeff.b.is_finite());
        }
    }
}

fn assert_round_trip(scene: &Scene) {
    let encoded = encode_scene(scene);
    let decoded = decode_scene(&encoded).expect("synth scenes always decode");
    assert_eq!(decoded.name(), scene.name());
    assert_eq!(decoded.len(), scene.len());
    assert_eq!(
        (decoded.width(), decoded.height()),
        (scene.width(), scene.height())
    );
    for (a, b) in decoded.iter().zip(scene.iter()) {
        // The builder re-normalizes rotations on decode, so compare with
        // a tolerance; the remaining parameters pass through.
        assert!((a.position() - b.position()).length() < 1e-6);
        assert!((a.scale() - b.scale()).length() < 1e-6);
        assert!((a.opacity() - b.opacity()).abs() < 1e-6);
        assert!((a.rotation().w - b.rotation().w).abs() < 1e-5);
        assert_eq!(a.sh().coefficients().len(), b.sh().coefficients().len());
    }
    assert_valid(&decoded);

    // Repeated round-trips must not drift: re-normalizing an
    // already-normalized rotation can still flip the last mantissa bit,
    // so exact idempotency is off the table, but the second pass has to
    // stay inside the same tolerance as the first instead of
    // accumulating error.
    let twice = decode_scene(&encode_scene(&decoded)).expect("second decode");
    for (a, b) in twice.iter().zip(scene.iter()) {
        assert!((a.position() - b.position()).length() < 1e-6);
        assert!((a.rotation().w - b.rotation().w).abs() < 1e-5);
    }
    assert_valid(&twice);
}

#[test]
fn round_trip_holds_across_seeds_and_profiles() {
    for seed in [0, 1, 7, 99] {
        assert_round_trip(&synth(seed, 33, 1));
    }
    assert_round_trip(&synth(3, 1, 0));
    assert_round_trip(&synth(4, 257, 2));
}

#[test]
fn round_trip_holds_across_sh_degrees() {
    for sh_degree in 0..=2 {
        let scene = synth(11, 17, sh_degree);
        let decoded = decode_scene(&encode_scene(&scene)).expect("decodes");
        let expected = (sh_degree + 1) * (sh_degree + 1);
        for gaussian in decoded.iter() {
            assert_eq!(gaussian.sh().coefficients().len(), expected);
        }
    }
}

#[test]
fn every_strict_prefix_is_a_typed_eof() {
    let bytes = encode_scene(&synth(5, 4, 1));
    for len in 0..bytes.len() {
        assert_eq!(
            decode_scene(&bytes[..len]),
            Err(DecodeError::UnexpectedEof),
            "prefix of {len}/{} bytes must report EOF",
            bytes.len()
        );
    }
}

#[test]
fn single_byte_corruption_is_always_typed_and_never_invalid() {
    let scene = synth(6, 3, 1);
    let bytes = encode_scene(&scene);
    let mut bad_magic = 0usize;
    let mut bad_version = 0usize;
    let mut eof = 0usize;
    let mut domain = 0usize;
    for position in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        if let Some(byte) = corrupted.get_mut(position) {
            *byte ^= 0xFF;
        }
        match decode_scene(&corrupted) {
            // A flip can land in a don't-care spot (e.g. a name byte or
            // a still-in-domain float) — then the decode must still
            // produce a fully valid scene.
            Ok(decoded) => assert_valid(&decoded),
            Err(DecodeError::BadMagic) => bad_magic += 1,
            Err(DecodeError::UnsupportedVersion(_)) => bad_version += 1,
            Err(DecodeError::UnexpectedEof) => eof += 1,
            Err(DecodeError::InvalidField(_)) | Err(DecodeError::NonFinite(_)) => domain += 1,
        }
    }
    // The sweep must have exercised every refusal class: the magic, the
    // version, the length-bearing header fields, and the parameter
    // domain checks.
    assert_eq!(bad_magic, 4, "each magic byte flip must be refused");
    assert!(bad_version >= 1, "version flips must be refused");
    assert!(eof >= 1, "length-field flips must be refused as EOF");
    assert!(domain >= 1, "parameter flips must hit the domain checks");
}

#[test]
fn corrupted_length_fields_cannot_allocate_unbounded() {
    // Declare u32::MAX splats on a tiny buffer: the decoder must refuse
    // with EOF once the buffer runs dry, not trust the count.
    let scene = synth(8, 2, 0);
    let mut bytes = encode_scene(&scene);
    let count_offset = 4 + 2 + 2 + scene.name().len() + 4 + 4;
    bytes
        .iter_mut()
        .skip(count_offset)
        .take(4)
        .for_each(|byte| *byte = 0xFF);
    assert_eq!(decode_scene(&bytes), Err(DecodeError::UnexpectedEof));
}
