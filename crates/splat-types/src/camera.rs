//! Pinhole camera model used by the preprocessing stage.
//!
//! The camera carries the intrinsics (focal lengths in pixels, principal
//! point, resolution) and the extrinsic pose. Preprocessing uses it to
//! transform splat centers into view space, project them to pixel
//! coordinates and compute the local affine (Jacobian) approximation for
//! EWA covariance projection.

use crate::error::{Error, RenderError, Result};
use crate::mat::{Mat3, Mat4};
use crate::vec::{Vec2, Vec3};

/// Pinhole intrinsics in pixel units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    /// Focal length along X, in pixels.
    pub focal_x: f32,
    /// Focal length along Y, in pixels.
    pub focal_y: f32,
    /// Principal point X, in pixels.
    pub center_x: f32,
    /// Principal point Y, in pixels.
    pub center_y: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl CameraIntrinsics {
    /// Builds intrinsics from a vertical field of view (radians) and an
    /// output resolution, placing the principal point at the image center.
    pub fn from_fov_y(fov_y: f32, width: u32, height: u32) -> Self {
        let focal_y = 0.5 * height as f32 / (0.5 * fov_y).tan();
        Self {
            focal_x: focal_y,
            focal_y,
            center_x: 0.5 * width as f32,
            center_y: 0.5 * height as f32,
            width,
            height,
        }
    }

    /// Fallible variant of [`CameraIntrinsics::from_fov_y`] rejecting
    /// zero-dimension resolutions and non-positive fields of view instead
    /// of producing intrinsics that fail [`CameraIntrinsics::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidResolution`] when either dimension is
    /// zero and [`RenderError::InvalidIntrinsics`] when `fov_y` is not a
    /// usable positive angle.
    pub fn try_from_fov_y(
        fov_y: f32,
        width: u32,
        height: u32,
    ) -> std::result::Result<Self, RenderError> {
        if width == 0 || height == 0 {
            return Err(RenderError::InvalidResolution { width, height });
        }
        if !(fov_y.is_finite() && fov_y > 0.0 && fov_y < std::f32::consts::PI) {
            return Err(RenderError::InvalidIntrinsics {
                reason: format!("vertical fov {fov_y} must be a finite angle in (0, pi)"),
            });
        }
        Ok(Self::from_fov_y(fov_y, width, height))
    }

    /// Horizontal field of view in radians.
    pub fn fov_x(&self) -> f32 {
        2.0 * (0.5 * self.width as f32 / self.focal_x).atan()
    }

    /// Vertical field of view in radians.
    pub fn fov_y(&self) -> f32 {
        2.0 * (0.5 * self.height as f32 / self.focal_y).atan()
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Validates that the intrinsics describe a usable camera.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the resolution is zero or a
    /// focal length is not strictly positive and finite (NaN and infinite
    /// focal lengths — e.g. from a NaN field of view — are rejected).
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(Error::InvalidParameter {
                name: "resolution",
                reason: format!("{}x{} must be non-zero", self.width, self.height),
            });
        }
        // `!(x > 0.0)` rather than `x <= 0.0`: a NaN focal length (e.g.
        // from a NaN field of view) fails every comparison and must still
        // be rejected here.
        if !(self.focal_x > 0.0
            && self.focal_x.is_finite()
            && self.focal_y > 0.0
            && self.focal_y.is_finite())
        {
            return Err(Error::InvalidParameter {
                name: "focal",
                reason: "focal lengths must be strictly positive and finite".to_owned(),
            });
        }
        Ok(())
    }
}

/// A posed pinhole camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    intrinsics: CameraIntrinsics,
    /// World-to-view transform.
    view: Mat4,
    /// Camera position in world space (cached inverse translation).
    position: Vec3,
    near: f32,
    far: f32,
}

impl Camera {
    /// Default near plane used when not otherwise specified (matches the
    /// 3D-GS reference renderer's 0.2 near clip).
    pub const DEFAULT_NEAR: f32 = 0.2;
    /// Default far plane.
    pub const DEFAULT_FAR: f32 = 1000.0;

    /// Creates a camera looking from `eye` toward `target` with the given
    /// `up` vector and intrinsics.
    ///
    /// The pose is not validated: a degenerate orientation (`eye == target`
    /// or `up` parallel to the view direction) produces a non-finite view
    /// matrix that [`Camera::validate`] — and every fallible render entry
    /// point built on it — rejects. Use [`Camera::try_look_at`] to surface
    /// the problem at construction time instead.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, intrinsics: CameraIntrinsics) -> Self {
        Self {
            intrinsics,
            view: Mat4::look_at_rh(eye, target, up),
            position: eye,
            near: Self::DEFAULT_NEAR,
            far: Self::DEFAULT_FAR,
        }
    }

    /// Fallible variant of [`Camera::look_at`] that rejects degenerate
    /// poses instead of silently producing a NaN view matrix.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::DegenerateCamera`] when `eye == target`, the
    /// `up` vector is (numerically) parallel to the viewing direction or
    /// any input is non-finite, and propagates intrinsics validation
    /// failures ([`RenderError::InvalidResolution`] /
    /// [`RenderError::InvalidIntrinsics`]).
    pub fn try_look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        intrinsics: CameraIntrinsics,
    ) -> std::result::Result<Self, RenderError> {
        let camera = Self::look_at(eye, target, up, intrinsics);
        camera.validate()?;
        Ok(camera)
    }

    /// Validates that the camera can serve a render request: finite view
    /// matrix (i.e. a non-degenerate pose), usable intrinsics and an
    /// ordered positive clip range.
    ///
    /// # Errors
    ///
    /// Returns the [`RenderError`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> std::result::Result<(), RenderError> {
        if self.intrinsics.width == 0 || self.intrinsics.height == 0 {
            return Err(RenderError::InvalidResolution {
                width: self.intrinsics.width,
                height: self.intrinsics.height,
            });
        }
        if let Err(error) = self.intrinsics.validate() {
            return Err(RenderError::InvalidIntrinsics {
                reason: error.to_string(),
            });
        }
        for row in 0..4 {
            for col in 0..4 {
                if !self.view.at(row, col).is_finite() {
                    return Err(RenderError::DegenerateCamera {
                        reason: "view matrix is non-finite".to_owned(),
                    });
                }
            }
        }
        // A degenerate look_at (up parallel to the view direction, or
        // eye == target) zeroes one or more basis vectors, collapsing the
        // rotation block; a usable pose has |det| == 1.
        let det = self.view_rotation().determinant();
        if !det.is_finite() || (det.abs() - 1.0).abs() > 1e-3 {
            return Err(RenderError::DegenerateCamera {
                reason: format!(
                    "view rotation is not orthonormal (determinant {det}); the up vector \
                     is parallel to the view direction or eye coincides with the target"
                ),
            });
        }
        if !(self.near.is_finite()
            && self.far.is_finite()
            && 0.0 < self.near
            && self.near < self.far)
        {
            return Err(RenderError::DegenerateCamera {
                reason: format!(
                    "clip range [{}, {}] must be finite, positive and ordered",
                    self.near, self.far
                ),
            });
        }
        Ok(())
    }

    /// Overrides the near/far clipping range.
    pub fn with_clip_range(mut self, near: f32, far: f32) -> Self {
        self.near = near;
        self.far = far;
        self
    }

    /// The same pose at half the output resolution.
    ///
    /// Focal lengths and the principal point are scaled by exactly 0.5 (a
    /// power of two, so the scaling is bit-exact); odd dimensions round
    /// *outward* (`div_ceil`) so every full-resolution pixel has a source
    /// texel when the half-resolution frame is upsampled 2× at delivery,
    /// and the tile grid stays consistent with the intrinsics. The pose,
    /// clip range and field of view are unchanged.
    pub fn half_resolution(&self) -> Self {
        let i = &self.intrinsics;
        Self {
            intrinsics: CameraIntrinsics {
                focal_x: i.focal_x * 0.5,
                focal_y: i.focal_y * 0.5,
                center_x: i.center_x * 0.5,
                center_y: i.center_y * 0.5,
                width: i.width.div_ceil(2),
                height: i.height.div_ceil(2),
            },
            view: self.view,
            position: self.position,
            near: self.near,
            far: self.far,
        }
    }

    /// The camera intrinsics.
    #[inline]
    pub fn intrinsics(&self) -> &CameraIntrinsics {
        &self.intrinsics
    }

    /// World-space camera position.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// World-to-view transform.
    #[inline]
    pub fn view_matrix(&self) -> &Mat4 {
        &self.view
    }

    /// Near clipping distance.
    #[inline]
    pub fn near(&self) -> f32 {
        self.near
    }

    /// Far clipping distance.
    #[inline]
    pub fn far(&self) -> f32 {
        self.far
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.intrinsics.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.intrinsics.height
    }

    /// Transforms a world-space point into view space (camera looks along
    /// -Z; visible points have negative `z`).
    #[inline]
    pub fn to_view(&self, world: Vec3) -> Vec3 {
        self.view.transform_point(world).truncate()
    }

    /// Lane-chunked variant of [`Camera::to_view`]: transforms `W`
    /// world-space points given as coordinate lanes and returns the view
    /// coordinates as lanes.
    ///
    /// Each lane performs exactly the floating-point operations of
    /// [`Camera::to_view`] in the same order (no fused multiply-add), so
    /// every lane is bit-identical to the scalar transform — the chunked
    /// projection path is pinned against this property. The fixed lane
    /// count `W` lets the compiler unroll and vectorize the loop.
    pub fn to_view_lanes<const W: usize>(
        &self,
        xs: &[f32; W],
        ys: &[f32; W],
        zs: &[f32; W],
    ) -> ([f32; W], [f32; W], [f32; W]) {
        // The same coefficients `Mat4::mul_vec` reads, hoisted out of the
        // lane loop; `w = 1` makes the fourth column a plain translation
        // (`t * 1.0` is bit-exact).
        let (m00, m01, m02, m03) = (
            self.view.at(0, 0),
            self.view.at(0, 1),
            self.view.at(0, 2),
            self.view.at(0, 3),
        );
        let (m10, m11, m12, m13) = (
            self.view.at(1, 0),
            self.view.at(1, 1),
            self.view.at(1, 2),
            self.view.at(1, 3),
        );
        let (m20, m21, m22, m23) = (
            self.view.at(2, 0),
            self.view.at(2, 1),
            self.view.at(2, 2),
            self.view.at(2, 3),
        );
        let mut vx = [0.0f32; W];
        let mut vy = [0.0f32; W];
        let mut vz = [0.0f32; W];
        for lane in 0..W {
            let (x, y, z) = (xs[lane], ys[lane], zs[lane]);
            vx[lane] = ((m00 * x + m01 * y) + m02 * z) + m03 * 1.0;
            vy[lane] = ((m10 * x + m11 * y) + m12 * z) + m13 * 1.0;
            vz[lane] = ((m20 * x + m21 * y) + m22 * z) + m23 * 1.0;
        }
        (vx, vy, vz)
    }

    /// Depth of a world-space point along the viewing direction
    /// (positive in front of the camera). This is the `D` value used for
    /// tile-wise sorting.
    #[inline]
    pub fn depth_of(&self, world: Vec3) -> f32 {
        -self.to_view(world).z
    }

    /// Projects a view-space point to pixel coordinates.
    ///
    /// Returns `None` for points at or behind the camera plane.
    pub fn view_to_pixel(&self, view: Vec3) -> Option<Vec2> {
        let depth = -view.z;
        if depth <= 1e-6 {
            return None;
        }
        Some(Vec2::new(
            self.intrinsics.focal_x * view.x / depth + self.intrinsics.center_x,
            self.intrinsics.focal_y * view.y / depth + self.intrinsics.center_y,
        ))
    }

    /// Projects a world-space point to pixel coordinates (`2D_XY`).
    pub fn project(&self, world: Vec3) -> Option<Vec2> {
        self.view_to_pixel(self.to_view(world))
    }

    /// Conservative frustum test for a sphere of `radius` around `world`.
    ///
    /// Matches the culling performed in 3D-GS preprocessing: points behind
    /// the near plane or far outside the lateral frustum (with a 30% guard
    /// band, mirroring the reference implementation's 1.3× tangent bound)
    /// are culled.
    pub fn is_in_frustum(&self, world: Vec3, radius: f32) -> bool {
        let view = self.to_view(world);
        let depth = -view.z;
        if depth + radius < self.near || depth - radius > self.far {
            return false;
        }
        let limit_x = 1.3 * (0.5 * self.intrinsics.fov_x()).tan();
        let limit_y = 1.3 * (0.5 * self.intrinsics.fov_y()).tan();
        let safe_depth = depth.max(self.near);
        view.x.abs() - radius <= limit_x * safe_depth
            && view.y.abs() - radius <= limit_y * safe_depth
    }

    /// The Jacobian of the projection at a view-space point, used by EWA
    /// splatting to project the 3D covariance to the screen:
    ///
    /// `J = [[fx/z, 0, -fx·x/z²], [0, fy/z, -fy·y/z²]]` (rows packed into a
    /// 3×3 matrix with a zero last row).
    pub fn projection_jacobian(&self, view: Vec3) -> Mat3 {
        let depth = (-view.z).max(1e-6);
        let inv_z = 1.0 / depth;
        let inv_z2 = inv_z * inv_z;
        // Note view.z is negative; the reference implementation clamps
        // lateral extent before computing the Jacobian, which we mirror in
        // the preprocessing stage rather than here.
        Mat3::from_rows(
            self.intrinsics.focal_x * inv_z,
            0.0,
            self.intrinsics.focal_x * view.x * inv_z2,
            0.0,
            self.intrinsics.focal_y * inv_z,
            self.intrinsics.focal_y * view.y * inv_z2,
            0.0,
            0.0,
            0.0,
        )
    }

    /// The world-to-view rotation block (no translation), used to rotate
    /// covariances into view space.
    pub fn view_rotation(&self) -> Mat3 {
        self.view.upper_left_3x3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(std::f32::consts::FRAC_PI_2, 800, 600),
        )
    }

    #[test]
    fn center_point_projects_to_principal_point() {
        let cam = test_camera();
        let px = cam.project(Vec3::new(0.0, 0.0, 5.0)).expect("in front");
        assert!((px.x - 400.0).abs() < 1e-3);
        assert!((px.y - 300.0).abs() < 1e-3);
    }

    #[test]
    fn depth_increases_along_view_direction() {
        let cam = test_camera();
        assert!(cam.depth_of(Vec3::new(0.0, 0.0, 2.0)) < cam.depth_of(Vec3::new(0.0, 0.0, 5.0)));
        assert!((cam.depth_of(Vec3::new(0.0, 0.0, 2.0)) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn points_behind_camera_do_not_project() {
        let cam = test_camera();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
    }

    #[test]
    fn frustum_culls_behind_and_far_points() {
        let cam = test_camera();
        assert!(!cam.is_in_frustum(Vec3::new(0.0, 0.0, -5.0), 0.1));
        assert!(!cam.is_in_frustum(Vec3::new(0.0, 0.0, 5000.0), 0.1));
        assert!(cam.is_in_frustum(Vec3::new(0.0, 0.0, 10.0), 0.1));
    }

    #[test]
    fn frustum_keeps_points_near_the_border_with_guard_band() {
        let cam = test_camera();
        // 90° vertical FOV at depth 10 → half-extent 10; the 1.3 guard band
        // keeps points slightly outside.
        assert!(cam.is_in_frustum(Vec3::new(0.0, 11.0, 10.0), 0.0));
        assert!(!cam.is_in_frustum(Vec3::new(0.0, 20.0, 10.0), 0.0));
    }

    #[test]
    fn half_resolution_halves_intrinsics_and_rounds_outward() {
        let cam = test_camera();
        let half = cam.half_resolution();
        let (full_i, half_i) = (cam.intrinsics(), half.intrinsics());
        assert_eq!(half_i.width, 400);
        assert_eq!(half_i.height, 300);
        assert_eq!(half_i.focal_x.to_bits(), (full_i.focal_x * 0.5).to_bits());
        assert_eq!(half_i.focal_y.to_bits(), (full_i.focal_y * 0.5).to_bits());
        assert_eq!(half_i.center_x.to_bits(), (full_i.center_x * 0.5).to_bits());
        assert_eq!(half_i.center_y.to_bits(), (full_i.center_y * 0.5).to_bits());
        // Pose, clip range and field of view are untouched.
        assert_eq!(half.view_matrix(), cam.view_matrix());
        assert_eq!(half.position(), cam.position());
        assert_eq!(half.near(), cam.near());
        assert_eq!(half.far(), cam.far());
        assert!((half_i.fov_y() - full_i.fov_y()).abs() < 1e-5);
        assert!(half.validate().is_ok());

        // Odd dimensions round outward so upsampling 2x always has a
        // source texel: 97x63 -> 49x32, and 2*49 >= 97, 2*32 >= 63.
        let odd = Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 97, 63),
        )
        .half_resolution();
        assert_eq!(odd.intrinsics().width, 49);
        assert_eq!(odd.intrinsics().height, 32);
        assert!(odd.validate().is_ok());

        // Half-resolution is idempotent in shape: applying it twice keeps
        // shrinking without ever hitting zero.
        let tiny = odd.half_resolution().half_resolution().half_resolution();
        assert!(tiny.intrinsics().width >= 1);
        assert!(tiny.intrinsics().height >= 1);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn lateral_offset_moves_projection() {
        let cam = test_camera();
        let left = cam.project(Vec3::new(-1.0, 0.0, 5.0)).unwrap();
        let right = cam.project(Vec3::new(1.0, 0.0, 5.0)).unwrap();
        // Symmetric offsets land symmetrically around the principal point
        // and on opposite sides of it.
        assert!((left.x - 400.0).abs() > 1.0);
        assert!(((left.x - 400.0) + (right.x - 400.0)).abs() < 1e-3);
    }

    #[test]
    fn to_view_lanes_is_bit_identical_to_the_scalar_transform() {
        let cam = Camera::look_at(
            Vec3::new(3.0, -2.0, 4.5),
            Vec3::new(0.3, 1.0, 0.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 640, 480),
        );
        let xs = [0.1f32, -3.7, 12.5, 0.0, 8.25, -0.001, 4.0, 1e3];
        let ys = [2.0f32, 0.5, -9.25, 1.0, -2.5, 7.125, 0.0, -1e3];
        let zs = [5.0f32, 1.25, 3.0, -4.0, 0.75, 2.5, -8.0, 0.5];
        let (vx, vy, vz) = cam.to_view_lanes(&xs, &ys, &zs);
        for lane in 0..8 {
            let scalar = cam.to_view(Vec3::new(xs[lane], ys[lane], zs[lane]));
            assert_eq!(scalar.x.to_bits(), vx[lane].to_bits(), "lane {lane} x");
            assert_eq!(scalar.y.to_bits(), vy[lane].to_bits(), "lane {lane} y");
            assert_eq!(scalar.z.to_bits(), vz[lane].to_bits(), "lane {lane} z");
        }
    }

    #[test]
    fn intrinsics_validate_rejects_zero_resolution() {
        let mut intr = CameraIntrinsics::from_fov_y(1.0, 640, 480);
        intr.width = 0;
        assert!(intr.validate().is_err());
    }

    #[test]
    fn intrinsics_fov_round_trip() {
        let fov = std::f32::consts::FRAC_PI_3;
        let intr = CameraIntrinsics::from_fov_y(fov, 1920, 1080);
        assert!((intr.fov_y() - fov).abs() < 1e-4);
    }

    #[test]
    fn jacobian_scales_with_inverse_depth() {
        let cam = test_camera();
        let near = cam.projection_jacobian(Vec3::new(0.0, 0.0, -2.0));
        let far = cam.projection_jacobian(Vec3::new(0.0, 0.0, -4.0));
        assert!((near.at(0, 0) / far.at(0, 0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn view_rotation_is_orthonormal() {
        let cam = Camera::look_at(
            Vec3::new(3.0, 2.0, -4.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 640, 480),
        );
        let r = cam.view_rotation();
        let rt_r = r.transpose() * r;
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((rt_r.at(i, j) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn try_look_at_rejects_degenerate_poses() {
        let intr = CameraIntrinsics::from_fov_y(1.0, 640, 480);
        // Up parallel to the viewing direction.
        let parallel_up = Camera::try_look_at(Vec3::ZERO, Vec3::new(0.0, 5.0, 0.0), Vec3::Y, intr);
        assert!(matches!(
            parallel_up,
            Err(RenderError::DegenerateCamera { .. })
        ));
        // Eye coincides with the target.
        let zero_dir = Camera::try_look_at(Vec3::ONE, Vec3::ONE, Vec3::Y, intr);
        assert!(matches!(
            zero_dir,
            Err(RenderError::DegenerateCamera { .. })
        ));
        // A healthy pose round-trips.
        let ok = Camera::try_look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Vec3::Y, intr)
            .expect("valid pose");
        assert_eq!(ok.width(), 640);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn try_look_at_rejects_zero_resolution() {
        let mut intr = CameraIntrinsics::from_fov_y(1.0, 640, 480);
        intr.height = 0;
        let result = Camera::try_look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Vec3::Y, intr);
        assert_eq!(
            result.unwrap_err(),
            RenderError::InvalidResolution {
                width: 640,
                height: 0
            }
        );
    }

    #[test]
    fn validate_rejects_bad_clip_ranges() {
        let intr = CameraIntrinsics::from_fov_y(1.0, 320, 240);
        let camera = Camera::look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Vec3::Y, intr)
            .with_clip_range(10.0, 1.0);
        assert!(matches!(
            camera.validate(),
            Err(RenderError::DegenerateCamera { .. })
        ));
    }

    #[test]
    fn try_from_fov_y_rejects_bad_inputs() {
        assert!(matches!(
            CameraIntrinsics::try_from_fov_y(1.0, 0, 480),
            Err(RenderError::InvalidResolution { .. })
        ));
        assert!(matches!(
            CameraIntrinsics::try_from_fov_y(0.0, 640, 480),
            Err(RenderError::InvalidIntrinsics { .. })
        ));
        assert!(matches!(
            CameraIntrinsics::try_from_fov_y(f32::NAN, 640, 480),
            Err(RenderError::InvalidIntrinsics { .. })
        ));
        assert!(CameraIntrinsics::try_from_fov_y(1.0, 640, 480).is_ok());
    }

    #[test]
    fn pixel_count_matches_resolution() {
        let intr = CameraIntrinsics::from_fov_y(1.0, 1959, 1090);
        assert_eq!(intr.pixel_count(), 1959 * 1090);
    }
}
