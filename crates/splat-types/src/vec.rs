//! Small fixed-size vectors (`Vec2`, `Vec3`, `Vec4`) over `f32`.
//!
//! These mirror the subset of a typical linear-algebra crate that the
//! rendering pipeline needs: component-wise arithmetic, dot/cross products,
//! norms and normalization. All operations are `#[inline]` and panic-free.

use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-component single-precision vector (screen-space positions, tile
/// coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component single-precision vector (world-space positions, scales,
/// colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component single-precision vector (homogeneous coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

macro_rules! impl_common {
    ($ty:ident, $($comp:ident),+) => {
        impl $ty {
            /// The zero vector.
            pub const ZERO: Self = Self { $($comp: 0.0),+ };
            /// The vector with every component equal to one.
            pub const ONE: Self = Self { $($comp: 1.0),+ };

            /// Creates a vector from its components.
            #[inline]
            pub const fn new($($comp: f32),+) -> Self {
                Self { $($comp),+ }
            }

            /// Creates a vector with every component set to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($comp: v),+ }
            }

            /// Component-wise dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$comp * rhs.$comp)+
            }

            /// Squared Euclidean norm.
            #[inline]
            pub fn length_squared(self) -> f32 {
                self.dot(self)
            }

            /// Euclidean norm.
            #[inline]
            pub fn length(self) -> f32 {
                self.length_squared().sqrt()
            }

            /// Returns the unit vector in the same direction, or the zero
            /// vector if the length is (near) zero.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                if len <= f32::EPSILON {
                    Self::ZERO
                } else {
                    self / len
                }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($comp: self.$comp.min(rhs.$comp)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($comp: self.$comp.max(rhs.$comp)),+ }
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($comp: self.$comp.abs()),+ }
            }

            /// Component-wise multiplication (Hadamard product).
            #[inline]
            pub fn mul_elementwise(self, rhs: Self) -> Self {
                Self { $($comp: self.$comp * rhs.$comp),+ }
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self * (1.0 - t) + rhs * t
            }

            /// Largest component value.
            #[inline]
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $( m = m.max(self.$comp); )+
                m
            }

            /// Returns `true` when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$comp.is_finite())+
            }
        }

        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($comp: self.$comp + rhs.$comp),+ }
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$comp += rhs.$comp;)+
            }
        }

        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($comp: self.$comp - rhs.$comp),+ }
            }
        }

        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$comp -= rhs.$comp;)+
            }
        }

        impl Mul<f32> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($comp: self.$comp * rhs),+ }
            }
        }

        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                rhs * self
            }
        }

        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                $(self.$comp *= rhs;)+
            }
        }

        impl Div<f32> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($comp: self.$comp / rhs),+ }
            }
        }

        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, rhs: f32) {
                $(self.$comp /= rhs;)+
            }
        }

        impl Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($comp: -self.$comp),+ }
            }
        }
    };
}

impl_common!(Vec2, x, y);
impl_common!(Vec3, x, y, z);
impl_common!(Vec4, x, y, z, w);

impl Vec2 {
    /// Converts to an array `[x, y]`.
    #[inline]
    pub fn to_array(self) -> [f32; 2] {
        [self.x, self.y]
    }

    /// The 2D cross product (z-component of the 3D cross product), useful
    /// for orientation tests against oriented bounding boxes.
    #[inline]
    pub fn perp_dot(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }
}

impl Vec3 {
    /// Unit vector along +X.
    pub const X: Self = Self::new(1.0, 0.0, 0.0);
    /// Unit vector along +Y.
    pub const Y: Self = Self::new(0.0, 1.0, 0.0);
    /// Unit vector along +Z.
    pub const Z: Self = Self::new(0.0, 0.0, 1.0);

    /// Converts to an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Extends to homogeneous coordinates with the given `w`.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Truncates to the XY screen-space components.
    #[inline]
    pub fn truncate(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec4 {
    /// Converts to an array `[x, y, z, w]`.
    #[inline]
    pub fn to_array(self) -> [f32; 4] {
        [self.x, self.y, self.z, self.w]
    }

    /// Drops the homogeneous coordinate (without dividing by it).
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: divides the XYZ components by `w`.
    ///
    /// Returns `None` when `w` is (near) zero, which corresponds to a point
    /// on the camera plane that cannot be projected.
    #[inline]
    pub fn project(self) -> Option<Vec3> {
        if self.w.abs() <= f32::EPSILON {
            None
        } else {
            Some(Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w))
        }
    }
}

impl From<[f32; 2]> for Vec2 {
    #[inline]
    fn from(a: [f32; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 4]> for Vec4 {
    #[inline]
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec2> for [f32; 2] {
    #[inline]
    fn from(v: Vec2) -> Self {
        v.to_array()
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl From<Vec4> for [f32; 4] {
    #[inline]
    fn from(v: Vec4) -> Self {
        v.to_array()
    }
}

macro_rules! impl_index {
    ($ty:ident, $n:expr, $($idx:expr => $comp:ident),+) => {
        impl Index<usize> for $ty {
            type Output = f32;
            #[inline]
            fn index(&self, index: usize) -> &f32 {
                match index {
                    $($idx => &self.$comp,)+
                    // lint:allow(no-panic-paths): std's Index contract is to panic out of bounds
                    _ => panic!("index {index} out of bounds for {}", stringify!($ty)),
                }
            }
        }
        impl IndexMut<usize> for $ty {
            #[inline]
            fn index_mut(&mut self, index: usize) -> &mut f32 {
                match index {
                    $($idx => &mut self.$comp,)+
                    // lint:allow(no-panic-paths): std's Index contract is to panic out of bounds
                    _ => panic!("index {index} out of bounds for {}", stringify!($ty)),
                }
            }
        }
    };
}

impl_index!(Vec2, 2, 0 => x, 1 => y);
impl_index!(Vec3, 3, 0 => x, 1 => y, 2 => z);
impl_index!(Vec4, 4, 0 => x, 1 => y, 2 => z, 3 => w);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    const EPS: f32 = 1e-5;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(approx(c.dot(a), 0.0));
        assert!(approx(c.dot(b), 0.0));
    }

    #[test]
    fn vec3_basis_cross_products() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn normalization_produces_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!(approx(v.normalized().length(), 1.0));
    }

    #[test]
    fn normalizing_zero_vector_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn vec4_project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Some(Vec3::new(1.0, 2.0, 3.0)));
    }

    #[test]
    fn vec4_project_rejects_zero_w() {
        let v = Vec4::new(1.0, 1.0, 1.0, 0.0);
        assert_eq!(v.project(), None);
    }

    #[test]
    fn perp_dot_sign_matches_orientation() {
        // Counter-clockwise quarter turn has a positive perp-dot.
        assert!(Vec2::new(1.0, 0.0).perp_dot(Vec2::new(0.0, 1.0)) > 0.0);
        assert!(Vec2::new(0.0, 1.0).perp_dot(Vec2::new(1.0, 0.0)) < 0.0);
    }

    #[test]
    fn rotated_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f32::consts::FRAC_PI_2);
        assert!(approx(v.x, 0.0));
        assert!(approx(v.y, 1.0));
    }

    #[test]
    fn indexing_round_trips() {
        let mut v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        v[2] = 9.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let v = Vec2::new(1.0, 2.0);
        let _ = v[2];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn array_conversions_round_trip() {
        let v = Vec3::new(0.5, -1.5, 2.5);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    fn sample_vec3(rng: &mut Rng, extent: f32) -> Vec3 {
        Vec3::new(
            rng.range_f32(-extent, extent),
            rng.range_f32(-extent, extent),
            rng.range_f32(-extent, extent),
        )
    }

    #[test]
    fn dot_product_is_commutative() {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00_0000_0001);
        for _ in 0..500 {
            let a = sample_vec3(&mut rng, 100.0);
            let b = sample_vec3(&mut rng, 100.0);
            assert!(approx(a.dot(b), b.dot(a)));
        }
    }

    #[test]
    fn cross_product_is_anticommutative() {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00_0000_0002);
        for _ in 0..500 {
            let a = sample_vec3(&mut rng, 10.0);
            let b = sample_vec3(&mut rng, 10.0);
            let lhs = a.cross(b);
            let rhs = -(b.cross(a));
            assert!(approx(lhs.x, rhs.x));
            assert!(approx(lhs.y, rhs.y));
            assert!(approx(lhs.z, rhs.z));
        }
    }

    #[test]
    fn triangle_inequality() {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00_0000_0003);
        for _ in 0..500 {
            let a = sample_vec3(&mut rng, 100.0);
            let b = sample_vec3(&mut rng, 100.0);
            assert!((a + b).length() <= a.length() + b.length() + EPS);
        }
    }

    #[test]
    fn normalized_length_is_one_or_zero() {
        let mut rng = Rng::seed_from_u64(0xC0FF_EE00_0000_0004);
        for _ in 0..500 {
            let v = sample_vec3(&mut rng, 100.0);
            let n = v.normalized();
            let len = n.length();
            assert!(approx(len, 1.0) || approx(len, 0.0));
        }
    }
}
