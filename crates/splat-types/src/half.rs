//! Software IEEE-754 binary16 ("half precision") conversion.
//!
//! The GS-TG evaluation converts models trained in 32-bit floating point to
//! 16-bit floating point to improve throughput and area efficiency of the
//! accelerator (Section VI-A of the paper). This module provides the exact
//! round-to-nearest-even conversion so that the simulator can quantify the
//! effect of the reduced precision and so that scene serialization can match
//! the accelerator's on-chip number format.

use std::fmt;

/// An IEEE-754 binary16 value stored as its bit pattern.
///
/// `F16` is a storage/transport format: arithmetic is performed by
/// converting to `f32`, operating, and converting back, which mirrors how
/// the modelled hardware datapath treats half-precision operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: Self = Self(0);
    /// One.
    pub const ONE: Self = Self(0x3C00);
    /// Largest finite value (65504.0).
    pub const MAX: Self = Self(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Self = Self(0x0400);
    /// Positive infinity.
    pub const INFINITY: Self = Self(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Self = Self(0xFC00);

    /// Creates a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable half
    /// (round-to-nearest-even, the IEEE default used by hardware FP units).
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            let payload = if mantissa != 0 { 0x0200 } else { 0 };
            return Self(sign | 0x7C00 | payload);
        }

        // Re-bias exponent from f32 (127) to f16 (15).
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return Self(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normalized result: keep top 10 mantissa bits with rounding.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_man = (mantissa >> 13) as u16;
            let round_bit = (mantissa >> 12) & 1;
            let sticky = mantissa & 0x0FFF;
            let mut result = sign | half_exp | half_man;
            if round_bit == 1 && (sticky != 0 || (half_man & 1) == 1) {
                result = result.wrapping_add(1);
            }
            return Self(result);
        }
        if unbiased >= -24 {
            // Subnormal result.
            let full_man = mantissa | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let half_man = (full_man >> shift) as u16;
            let round_mask = 1u32 << (shift - 1);
            let round_bit = (full_man & round_mask) != 0;
            let sticky = (full_man & (round_mask - 1)) != 0;
            let mut result = sign | half_man;
            if round_bit && (sticky || (half_man & 1) == 1) {
                result = result.wrapping_add(1);
            }
            return Self(result);
        }
        // Underflow to signed zero.
        Self(sign)
    }

    /// Converts the half back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let mantissa = u32::from(self.0) & 0x03FF;

        let bits = if exp == 0 {
            if mantissa == 0 {
                sign
            } else {
                // Subnormal: normalize it into an f32.
                let mut m = mantissa;
                let mut e: i32 = 0;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                let exp32 = (127 - 15 + e + 1) as u32;
                sign | (exp32 << 23) | ((m & 0x03FF) << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mantissa << 13)
        } else {
            let exp32 = exp + 127 - 15;
            sign | (exp32 << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Returns `true` for NaN values.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` for positive/negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl From<f32> for F16 {
    #[inline]
    fn from(v: f32) -> Self {
        Self::from_f32(v)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` through half precision and back, emulating a datapath
/// that stores the value in 16 bits.
///
/// ```
/// let x = splat_types::half::round_trip_f16(std::f32::consts::PI);
/// assert!((x - std::f32::consts::PI).abs() < 1e-3);
/// ```
#[inline]
pub fn round_trip_f16(value: f32) -> f32 {
    F16::from_f32(value).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(round_trip_f16(v), v, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn one_has_expected_bits() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn max_value_round_trips() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).is_infinite());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal half is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_trip_f16(tiny), tiny);
        // Below half of it, we underflow to zero.
        assert_eq!(round_trip_f16(2.0f32.powi(-26)), 0.0);
    }

    #[test]
    fn signed_zero_is_preserved() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0009765625 = 1 + 2^-10 is exactly representable; halfway cases
        // between it and 1.0 round to the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_trip_f16(halfway), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(round_trip_f16(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let mut rng = Rng::seed_from_u64(0x5EED_F00D_0000_0001);
        for _ in 0..2_000 {
            let v = rng.range_f32(-60000.0, 60000.0);
            let r = round_trip_f16(v);
            // Relative error of binary16 is at most 2^-11 for normal values.
            let tol = (v.abs() * 2.0f32.powi(-10)).max(2.0f32.powi(-14));
            assert!((r - v).abs() <= tol, "value {v} -> {r}");
        }
    }

    #[test]
    fn conversion_is_monotonic() {
        let mut rng = Rng::seed_from_u64(0x5EED_F00D_0000_0002);
        for _ in 0..2_000 {
            let a = rng.range_f32(-1000.0, 1000.0);
            let b = rng.range_f32(-1000.0, 1000.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(round_trip_f16(lo) <= round_trip_f16(hi), "{lo} vs {hi}");
        }
    }

    #[test]
    fn all_finite_halves_round_trip_exactly() {
        // Positive finite halves: f16 -> f32 -> f16 must be the identity.
        // Exhaustive — the proptest sweep this replaces only sampled it.
        for bits in 0u16..0x7C00u16 {
            let h = F16::from_bits(bits);
            assert_eq!(F16::from_f32(h.to_f32()), h, "bits {bits:#06x}");
        }
    }
}
