//! Small deterministic PRNG (splitmix64-seeded xoshiro256++).
//!
//! The build environment has no access to crates.io, so the `rand` crate
//! is replaced by this self-contained generator. It is the single source
//! of randomness for the workspace: procedural scene generation
//! (`splat-scene`) and the deterministic property-test sweeps all draw
//! from it. The generator only has to be fast, well distributed and —
//! above all — deterministic: the same seed must produce the same stream
//! on every platform, which keeps every experiment reproducible.

/// A deterministic 64-bit PRNG (xoshiro256++ seeded through splitmix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn gen_f32(&mut self) -> f32 {
        // 24 high bits → the full f32 mantissa range without bias.
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.gen_f32() * (hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        // Plain modulo reduction; the bias is negligible for the small
        // ranges scene generation uses.
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f32();
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn floats_cover_the_interval_roughly_uniformly() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_f32() as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn indices_stay_in_range_and_hit_every_bucket() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng::seed_from_u64(0).gen_index(0);
    }
}
