//! Math primitives and the 3D Gaussian data model used throughout the GS-TG
//! reproduction.
//!
//! The crate is intentionally free of external math dependencies: every type
//! (vectors, matrices, quaternions, IEEE-754 binary16 conversion, spherical
//! harmonics) is implemented here so that the rendering pipeline and the
//! cycle-level accelerator simulator are fully self-contained and
//! deterministic across platforms.
//!
//! # Quick example
//!
//! ```
//! use splat_types::{Gaussian3d, Vec3, Quat, Camera, CameraIntrinsics};
//!
//! // A single isotropic splat one unit in front of the camera.
//! let g = Gaussian3d::builder()
//!     .position(Vec3::new(0.0, 0.0, 1.0))
//!     .scale(Vec3::splat(0.05))
//!     .rotation(Quat::IDENTITY)
//!     .opacity(0.9)
//!     .base_color([0.8, 0.2, 0.2])
//!     .build();
//!
//! let cam = Camera::look_at(
//!     Vec3::new(0.0, 0.0, 0.0),
//!     Vec3::new(0.0, 0.0, 1.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//!     CameraIntrinsics::from_fov_y(std::f32::consts::FRAC_PI_3, 640, 480),
//! );
//!
//! // The splat is inside the view frustum.
//! assert!(cam.is_in_frustum(g.position(), 0.2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod color;
pub mod error;
pub mod gaussian;
pub mod half;
pub mod id;
pub mod mat;
pub mod priority;
pub mod quat;
pub mod rng;
pub mod sh;
pub mod vec;

pub use camera::{Camera, CameraIntrinsics};
pub use color::Rgb;
pub use error::{Error, RenderError, Result};
pub use gaussian::{Gaussian3d, Gaussian3dBuilder, Precision};
pub use half::F16;
pub use id::SceneId;
pub use mat::{Mat2, Mat3, Mat4};
pub use priority::Priority;
pub use quat::Quat;
pub use sh::{eval_color, ShCoefficients, SH_DEGREE_MAX};
pub use vec::{Vec2, Vec3, Vec4};
