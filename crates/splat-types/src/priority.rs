//! Request priority classes for admission control.
//!
//! The serving engine's admission policies (most importantly
//! `ShedLowPriority`) deflate over-capacity load by rejecting the
//! cheapest-to-reject submissions first — and "cheapest to reject" is
//! primarily this priority class. Priorities order naturally:
//! [`Priority::Low`] `<` [`Priority::Normal`] `<` [`Priority::High`] `<`
//! [`Priority::Critical`].

use std::fmt;

/// The admission-control priority class of a render submission.
///
/// Higher priorities are dispatched first and shed last. The default is
/// [`Priority::Normal`], so callers that never think about priorities all
/// compete in one FIFO class.
///
/// # Examples
///
/// ```
/// use splat_types::Priority;
///
/// assert!(Priority::Low < Priority::Normal);
/// assert!(Priority::High < Priority::Critical);
/// assert_eq!(Priority::default(), Priority::Normal);
/// assert_eq!(Priority::Critical.label(), "critical");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort work: previews, prefetches, speculative renders. Shed
    /// first under load.
    Low,
    /// Ordinary interactive traffic (the default).
    #[default]
    Normal,
    /// Latency-sensitive traffic that should jump the normal queue.
    High,
    /// Must-serve traffic (health probes, operator actions). Shed last.
    Critical,
}

impl Priority {
    /// All priority classes, lowest first.
    pub const ALL: [Priority; 4] = [
        Priority::Low,
        Priority::Normal,
        Priority::High,
        Priority::Critical,
    ];

    /// Short stable label used in logs, tables and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
            Priority::Critical => "critical",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_low_to_critical() {
        for pair in Priority::ALL.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn labels_are_stable_and_lowercase() {
        for priority in Priority::ALL {
            let label = priority.label();
            assert_eq!(label, label.to_lowercase());
            assert_eq!(priority.to_string(), label);
        }
    }

    #[test]
    fn priority_is_send_sync_and_hash() {
        fn assert_send_sync<T: Send + Sync + std::hash::Hash>() {}
        assert_send_sync::<Priority>();
    }
}
