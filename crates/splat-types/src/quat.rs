//! Unit quaternions representing splat orientations.
//!
//! 3D-GS parameterizes each Gaussian's covariance as `R S S^T R^T` where `R`
//! comes from a learned quaternion and `S` is a diagonal scale matrix. The
//! quaternion type here provides exactly that conversion plus the usual
//! composition and axis-angle constructors needed by the synthetic scene
//! generators.

use crate::mat::Mat3;
use crate::vec::Vec3;
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk` used to represent rotations.
///
/// Construction helpers always return normalized quaternions; deserialized
/// or manually constructed values can be re-normalized with
/// [`Quat::normalized`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar (real) part.
    pub w: f32,
    /// `i` coefficient.
    pub x: f32,
    /// `j` coefficient.
    pub y: f32,
    /// `k` coefficient.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw coefficients (`w`, `x`, `y`, `z`).
    ///
    /// The result is *not* normalized; call [`Quat::normalized`] when the
    /// coefficients do not already lie on the unit sphere.
    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians around `axis`.
    ///
    /// A zero-length axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let axis = axis.normalized();
        if axis == Vec3::ZERO {
            return Self::IDENTITY;
        }
        let (s, c) = (0.5 * angle).sin_cos();
        Self::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Creates a rotation from intrinsic Euler angles (yaw around Y, pitch
    /// around X, roll around Z), applied in that order.
    pub fn from_euler(yaw: f32, pitch: f32, roll: f32) -> Self {
        Self::from_axis_angle(Vec3::Y, yaw)
            * Self::from_axis_angle(Vec3::X, pitch)
            * Self::from_axis_angle(Vec3::Z, roll)
    }

    /// Squared norm of the coefficients.
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm of the coefficients.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_squared().sqrt()
    }

    /// Returns a unit quaternion in the same direction, or the identity if
    /// the norm is (near) zero.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n <= f32::EPSILON {
            Self::IDENTITY
        } else {
            Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Converts the (assumed unit) quaternion to a 3×3 rotation matrix.
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - w * z),
            2.0 * (x * z + w * y),
            2.0 * (x * y + w * z),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - w * x),
            2.0 * (x * z - w * y),
            2.0 * (y * z + w * x),
            1.0 - 2.0 * (x * x + y * y),
        )
    }

    /// Rotates a vector by the quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_rotation_matrix().mul_vec(v)
    }
}

impl Mul for Quat {
    type Output = Self;

    /// Hamilton product; composes rotations (`a * b` applies `b` first).
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4
    }

    fn vec_approx(a: Vec3, b: Vec3) -> bool {
        approx(a.x, b.x) && approx(a.y, b.y) && approx(a.z, b.z)
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, std::f32::consts::FRAC_PI_2);
        assert!(vec_approx(q.rotate(Vec3::X), Vec3::Y));
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::from_euler(0.3, -0.7, 1.1);
        let r = q.to_rotation_matrix();
        let rt_r = r.transpose() * r;
        for row in 0..3 {
            for col in 0..3 {
                let expected = if row == col { 1.0 } else { 0.0 };
                assert!(approx(rt_r.at(row, col), expected), "entry ({row},{col})");
            }
        }
        assert!(approx(r.determinant(), 1.0));
    }

    #[test]
    fn conjugate_inverts_unit_rotation() {
        let q = Quat::from_euler(0.5, 0.2, -0.9);
        let v = Vec3::new(0.3, 0.8, -1.2);
        assert!(vec_approx(q.conjugate().rotate(q.rotate(v)), v));
    }

    #[test]
    fn zero_axis_yields_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn normalizing_zero_quaternion_yields_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::IDENTITY);
    }

    #[test]
    fn rotation_preserves_length() {
        let mut rng = Rng::seed_from_u64(0xAAAA_BBBB_CCCC_DDDD);
        for case in 0..400 {
            let q = Quat::from_euler(
                rng.range_f32(-3.0, 3.0),
                rng.range_f32(-1.5, 1.5),
                rng.range_f32(-3.0, 3.0),
            );
            let v = Vec3::new(
                rng.range_f32(-10.0, 10.0),
                rng.range_f32(-10.0, 10.0),
                rng.range_f32(-10.0, 10.0),
            );
            assert!(
                (q.rotate(v).length() - v.length()).abs() < 1e-3 * (1.0 + v.length()),
                "case {case}"
            );
        }
    }

    #[test]
    fn composition_matches_matrix_product() {
        let mut rng = Rng::seed_from_u64(0x0F0F_0F0F_F0F0_F0F0);
        for case in 0..300 {
            let q1 = Quat::from_euler(
                rng.range_f32(-3.0, 3.0),
                rng.range_f32(-1.5, 1.5),
                rng.range_f32(-3.0, 3.0),
            );
            let q2 = Quat::from_euler(
                rng.range_f32(-3.0, 3.0),
                rng.range_f32(-1.5, 1.5),
                rng.range_f32(-3.0, 3.0),
            );
            let v = Vec3::new(
                rng.range_f32(-5.0, 5.0),
                rng.range_f32(-5.0, 5.0),
                rng.range_f32(-5.0, 5.0),
            );
            let via_quat = (q1 * q2).rotate(v);
            let via_mat = q1
                .to_rotation_matrix()
                .mul_vec(q2.to_rotation_matrix().mul_vec(v));
            assert!(
                (via_quat - via_mat).length() < 1e-2 * (1.0 + v.length()),
                "case {case}"
            );
        }
    }

    #[test]
    fn product_of_unit_quats_is_unit() {
        let mut rng = Rng::seed_from_u64(0x1357_9BDF_2468_ACE0);
        for case in 0..400 {
            let q = Quat::from_euler(
                rng.range_f32(-3.0, 3.0),
                rng.range_f32(-1.5, 1.5),
                rng.range_f32(-3.0, 3.0),
            ) * Quat::from_euler(
                rng.range_f32(-3.0, 3.0),
                rng.range_f32(-1.5, 1.5),
                rng.range_f32(-3.0, 3.0),
            );
            assert!((q.norm() - 1.0).abs() < 1e-3, "case {case}");
        }
    }
}
