//! Real spherical harmonics used for view-dependent splat color.
//!
//! 3D-GS stores per-Gaussian RGB spherical-harmonics coefficients up to
//! degree 3 (16 coefficients per channel) and evaluates them against the
//! normalized camera→splat direction during preprocessing to obtain the
//! view-dependent color `G_RGB` consumed by rasterization.

use crate::color::Rgb;
use crate::error::{Error, Result};
use crate::vec::Vec3;

/// Highest supported spherical-harmonics degree (matching 3D-GS).
pub const SH_DEGREE_MAX: usize = 3;

/// Number of SH basis functions for a given degree.
///
/// ```
/// assert_eq!(splat_types::sh::coefficient_count(0), 1);
/// assert_eq!(splat_types::sh::coefficient_count(3), 16);
/// ```
#[inline]
pub const fn coefficient_count(degree: usize) -> usize {
    (degree + 1) * (degree + 1)
}

// Real SH basis constants as used by the 3D-GS reference implementation.
const SH_C0: f32 = 0.282_094_79;
const SH_C1: f32 = 0.488_602_51;
const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];
const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Evaluates the real SH basis functions of `degree` in direction `dir`
/// (which must be normalized), writing `coefficient_count(degree)` values.
///
/// # Errors
///
/// Returns [`Error::UnsupportedShDegree`] for degrees above
/// [`SH_DEGREE_MAX`].
pub fn eval_basis(degree: usize, dir: Vec3) -> Result<Vec<f32>> {
    let mut basis = [0.0f32; coefficient_count(SH_DEGREE_MAX)];
    let count = eval_basis_into(degree, dir, &mut basis)?;
    Ok(basis[..count].to_vec())
}

/// Allocation-free variant of [`eval_basis`]: writes the basis values into
/// a stack buffer and returns how many were written
/// (`coefficient_count(degree)`). This is the path the per-frame color
/// evaluation uses so that preprocessing never touches the heap.
///
/// # Errors
///
/// Returns [`Error::UnsupportedShDegree`] for degrees above
/// [`SH_DEGREE_MAX`].
pub fn eval_basis_into(
    degree: usize,
    dir: Vec3,
    basis: &mut [f32; coefficient_count(SH_DEGREE_MAX)],
) -> Result<usize> {
    if degree > SH_DEGREE_MAX {
        return Err(Error::UnsupportedShDegree { degree });
    }
    let (x, y, z) = (dir.x, dir.y, dir.z);
    basis[0] = SH_C0;
    if degree >= 1 {
        basis[1] = -SH_C1 * y;
        basis[2] = SH_C1 * z;
        basis[3] = -SH_C1 * x;
    }
    if degree >= 2 {
        let (xx, yy, zz) = (x * x, y * y, z * z);
        let (xy, yz, xz) = (x * y, y * z, x * z);
        basis[4] = SH_C2[0] * xy;
        basis[5] = SH_C2[1] * yz;
        basis[6] = SH_C2[2] * (2.0 * zz - xx - yy);
        basis[7] = SH_C2[3] * xz;
        basis[8] = SH_C2[4] * (xx - yy);
    }
    if degree >= 3 {
        let (xx, yy, zz) = (x * x, y * y, z * z);
        basis[9] = SH_C3[0] * y * (3.0 * xx - yy);
        basis[10] = SH_C3[1] * x * y * z;
        basis[11] = SH_C3[2] * y * (4.0 * zz - xx - yy);
        basis[12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy);
        basis[13] = SH_C3[4] * x * (4.0 * zz - xx - yy);
        basis[14] = SH_C3[5] * z * (xx - yy);
        basis[15] = SH_C3[6] * x * (xx - 3.0 * yy);
    }
    Ok(coefficient_count(degree))
}

/// Evaluates the view-dependent color of a basis-major coefficient slice
/// in direction `dir` (normalized camera→splat direction), clamped to
/// non-negative values as in the 3D-GS reference renderer.
///
/// This is the shared kernel behind [`ShCoefficients::eval`] and the
/// structure-of-arrays scene storage (`SceneSoA`), which stores all
/// coefficients in one flat slice: both paths run bit-identical floating
/// point because they run *this* code.
///
/// `degree` must be at most [`SH_DEGREE_MAX`] and `coeffs` must hold
/// `coefficient_count(degree)` entries; extra entries are ignored.
#[inline]
pub fn eval_color(degree: usize, coeffs: &[Rgb], dir: Vec3) -> Rgb {
    let mut basis = [0.0f32; coefficient_count(SH_DEGREE_MAX)];
    // lint:allow(no-panic-paths): degree <= SH_DEGREE_MAX is enforced at ShCoefficients construction
    let count = eval_basis_into(degree, dir, &mut basis).expect("degree validated at construction");
    let mut color = Rgb::new(0.5, 0.5, 0.5);
    for (w, c) in basis[..count].iter().zip(coeffs) {
        color += *c * *w;
    }
    Rgb::new(color.r.max(0.0), color.g.max(0.0), color.b.max(0.0))
}

/// Per-Gaussian RGB spherical-harmonics coefficients.
///
/// Coefficients are stored interleaved per basis function:
/// `coeffs[i]` is the RGB weight of basis function `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShCoefficients {
    degree: usize,
    coeffs: Vec<Rgb>,
}

impl ShCoefficients {
    /// Creates degree-0 coefficients that reproduce `base_color` exactly
    /// for every viewing direction.
    pub fn constant(base_color: Rgb) -> Self {
        Self {
            degree: 0,
            coeffs: vec![Rgb::new(
                (base_color.r - 0.5) / SH_C0,
                (base_color.g - 0.5) / SH_C0,
                (base_color.b - 0.5) / SH_C0,
            )],
        }
    }

    /// Creates coefficients from raw per-basis RGB weights.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the coefficient count does
    /// not correspond to a complete degree (1, 4, 9 or 16 entries), and
    /// [`Error::UnsupportedShDegree`] above degree 3.
    pub fn from_coefficients(coeffs: Vec<Rgb>) -> Result<Self> {
        let degree = match coeffs.len() {
            1 => 0,
            4 => 1,
            9 => 2,
            16 => 3,
            n => {
                return Err(Error::InvalidParameter {
                    name: "coeffs",
                    reason: format!("{n} is not a complete SH coefficient count (1, 4, 9, 16)"),
                })
            }
        };
        if degree > SH_DEGREE_MAX {
            return Err(Error::UnsupportedShDegree { degree });
        }
        Ok(Self { degree, coeffs })
    }

    /// The SH degree stored.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Raw coefficient access (basis-major).
    #[inline]
    pub fn coefficients(&self) -> &[Rgb] {
        &self.coeffs
    }

    /// Evaluates the view-dependent color in direction `dir` (normalized
    /// camera→splat direction), clamped to non-negative values as in the
    /// 3D-GS reference renderer.
    pub fn eval(&self, dir: Vec3) -> Rgb {
        eval_color(self.degree, &self.coeffs, dir)
    }

    /// Number of floating-point values stored (3 per basis function), used
    /// by the DRAM traffic model.
    #[inline]
    pub fn value_count(&self) -> usize {
        self.coeffs.len() * 3
    }
}

impl Default for ShCoefficients {
    fn default() -> Self {
        Self::constant(Rgb::splat(0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn coefficient_counts() {
        assert_eq!(coefficient_count(0), 1);
        assert_eq!(coefficient_count(1), 4);
        assert_eq!(coefficient_count(2), 9);
        assert_eq!(coefficient_count(3), 16);
    }

    #[test]
    fn basis_rejects_unsupported_degree() {
        assert!(eval_basis(4, Vec3::Z).is_err());
    }

    #[test]
    fn basis_lengths_match_degree() {
        for degree in 0..=SH_DEGREE_MAX {
            let b = eval_basis(degree, Vec3::new(0.3, 0.5, 0.8).normalized()).unwrap();
            assert_eq!(b.len(), coefficient_count(degree));
        }
    }

    #[test]
    fn constant_coefficients_reproduce_base_color() {
        let base = Rgb::new(0.2, 0.6, 0.9);
        let sh = ShCoefficients::constant(base);
        for dir in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            Vec3::new(-0.5, 0.3, 0.8).normalized(),
        ] {
            let c = sh.eval(dir);
            assert!(c.max_abs_diff(base) < 1e-5, "direction {dir:?}");
        }
    }

    #[test]
    fn from_coefficients_validates_count() {
        assert!(ShCoefficients::from_coefficients(vec![Rgb::BLACK; 5]).is_err());
        assert!(ShCoefficients::from_coefficients(vec![Rgb::BLACK; 9]).is_ok());
    }

    #[test]
    fn eval_clamps_to_non_negative() {
        // Strongly negative DC coefficient would drive the color negative.
        let sh = ShCoefficients::from_coefficients(vec![Rgb::splat(-10.0)]).unwrap();
        let c = sh.eval(Vec3::Z);
        assert_eq!(c, Rgb::BLACK);
    }

    #[test]
    fn higher_degree_adds_view_dependence() {
        let mut coeffs = vec![Rgb::splat(0.0); 4];
        coeffs[0] = Rgb::splat(0.3);
        coeffs[2] = Rgb::new(0.5, 0.0, 0.0); // z-linear band
        let sh = ShCoefficients::from_coefficients(coeffs).unwrap();
        let from_front = sh.eval(Vec3::Z);
        let from_back = sh.eval(-Vec3::Z);
        assert!(from_front.r > from_back.r);
    }

    #[test]
    fn eval_color_slice_matches_owned_eval_bit_exactly() {
        let mut rng = Rng::seed_from_u64(0x5EED_C0DE);
        for _ in 0..64 {
            let coeffs: Vec<Rgb> = (0..16)
                .map(|_| Rgb::splat(rng.range_f32(-1.0, 1.0)))
                .collect();
            let sh = ShCoefficients::from_coefficients(coeffs.clone()).unwrap();
            let dir = Vec3::new(
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(-1.0, 1.0),
                rng.range_f32(0.1, 1.0),
            )
            .normalized();
            let owned = sh.eval(dir);
            let slice = eval_color(3, &coeffs, dir);
            assert_eq!(owned.r.to_bits(), slice.r.to_bits());
            assert_eq!(owned.g.to_bits(), slice.g.to_bits());
            assert_eq!(owned.b.to_bits(), slice.b.to_bits());
        }
    }

    #[test]
    fn value_count_counts_rgb_floats() {
        let sh = ShCoefficients::from_coefficients(vec![Rgb::BLACK; 16]).unwrap();
        assert_eq!(sh.value_count(), 48);
    }

    #[test]
    fn eval_is_finite_for_unit_directions() {
        let mut rng = Rng::seed_from_u64(0x0BAD_CAFE_DEAD_F00D);
        let mut tested = 0;
        while tested < 400 {
            let x = rng.range_f32(-1.0, 1.0);
            let y = rng.range_f32(-1.0, 1.0);
            let z = rng.range_f32(-1.0, 1.0);
            if Vec3::new(x, y, z).length() <= 1e-3 {
                continue;
            }
            tested += 1;
            let seed = (rng.range_f32(0.0, 255.0)).floor();
            let dir = Vec3::new(x, y, z).normalized();
            let coeffs: Vec<Rgb> = (0..16)
                .map(|i| Rgb::splat(((i as f32) + seed) * 0.01 - 0.5))
                .collect();
            let sh = ShCoefficients::from_coefficients(coeffs).unwrap();
            let c = sh.eval(dir);
            assert!(c.is_finite());
            assert!(c.r >= 0.0 && c.g >= 0.0 && c.b >= 0.0);
        }
    }
}
