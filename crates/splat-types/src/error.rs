//! Error type shared by the math and data-model layer.

use crate::id::SceneId;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or manipulating the Gaussian data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A matrix inversion was requested for a singular (non-invertible)
    /// matrix. Carries the determinant that was computed.
    SingularMatrix {
        /// Determinant of the offending matrix.
        determinant: f32,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A spherical-harmonics degree outside the supported range was used.
    UnsupportedShDegree {
        /// The requested degree.
        degree: usize,
    },
    /// A value could not be represented in the requested reduced precision.
    PrecisionOverflow {
        /// The value that overflowed.
        value: f32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { determinant } => {
                write!(f, "matrix is singular (determinant {determinant:e})")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::UnsupportedShDegree { degree } => {
                write!(f, "unsupported spherical harmonics degree {degree} (max 3)")
            }
            Error::PrecisionOverflow { value } => {
                write!(
                    f,
                    "value {value} cannot be represented in reduced precision"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Errors raised while validating or serving a render request.
///
/// The rendering front door ([`RenderRequest::validate`] in `splat-core` and
/// the `Engine` built on it) is panic-free: every malformed input that used
/// to panic or assert somewhere inside a pipeline — a degenerate camera, a
/// zero-dimension resolution, an empty scene, a tile size of zero — is
/// reported as one of these variants instead.
///
/// [`RenderRequest::validate`]: https://docs.rs/splat-core
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RenderError {
    /// The camera pose cannot be used for rendering: the view matrix is
    /// non-finite (e.g. a `look_at` with an up vector parallel to the view
    /// direction, or `eye == target`), or a clip plane is malformed.
    DegenerateCamera {
        /// Human-readable description of what is degenerate.
        reason: String,
    },
    /// The camera intrinsics describe a zero-area image.
    InvalidResolution {
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
    },
    /// A focal length or principal point is outside its domain.
    InvalidIntrinsics {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The scene contains no Gaussians, so there is nothing to render.
    EmptyScene,
    /// The tile size is not a power of two of at least 4 pixels
    /// (zero included).
    InvalidTileSize {
        /// The offending tile size.
        tile_size: u32,
    },
    /// Any other configuration violation (group sizing, accelerator
    /// parameters, worker counts, …).
    ///
    /// The serving engine also reports an internal backend panic (a
    /// pipeline bug, not a caller error) through this variant, with a
    /// reason beginning `"backend panicked"` — a client that retries on
    /// transient faults should treat that reason as retryable rather than
    /// as a permanent misconfiguration.
    InvalidConfiguration {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Admission control deflated the submission: the serving queue was at
    /// capacity and this job was (or would have been) the cheapest to
    /// reject — lowest priority first, then highest estimated cost, then
    /// most recent arrival.
    Overloaded {
        /// The admission capacity that was exceeded (queued jobs).
        capacity: usize,
    },
    /// The job was cancelled through its handle before a worker picked
    /// it up.
    Cancelled,
    /// The engine was shut down before the job could be served.
    ShutDown,
    /// A scene handle that this engine never issued: the [`SceneId`] is
    /// from another engine, fabricated, or ahead of the registration
    /// counter.
    UnknownScene {
        /// The unresolvable handle.
        id: SceneId,
    },
    /// A scene handle that *was* registered but has since left the
    /// resident set — deflated by the residency policy or explicitly
    /// evicted. Re-register the scene to serve it again.
    Evicted {
        /// The handle of the no-longer-resident scene.
        id: SceneId,
    },
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::DegenerateCamera { reason } => {
                write!(f, "degenerate camera: {reason}")
            }
            RenderError::InvalidResolution { width, height } => {
                write!(
                    f,
                    "invalid resolution {width}x{height}: both dimensions must be non-zero"
                )
            }
            RenderError::InvalidIntrinsics { reason } => {
                write!(f, "invalid camera intrinsics: {reason}")
            }
            RenderError::EmptyScene => write!(f, "scene contains no gaussians"),
            RenderError::InvalidTileSize { tile_size } => {
                write!(f, "tile size {tile_size} must be a power of two >= 4")
            }
            RenderError::InvalidConfiguration { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            RenderError::Overloaded { capacity } => {
                write!(
                    f,
                    "engine overloaded: admission queue at capacity {capacity}, job shed"
                )
            }
            RenderError::Cancelled => write!(f, "job cancelled before execution"),
            RenderError::ShutDown => write!(f, "engine shut down before the job was served"),
            RenderError::UnknownScene { id } => {
                write!(f, "unknown scene {id}: never registered with this engine")
            }
            RenderError::Evicted { id } => {
                write!(f, "{id} evicted from the resident set; register it again")
            }
        }
    }
}

impl std::error::Error for RenderError {}

impl From<Error> for RenderError {
    fn from(error: Error) -> Self {
        RenderError::InvalidConfiguration {
            reason: error.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = Error::SingularMatrix { determinant: 0.0 };
        let s = e.to_string();
        assert!(s.starts_with("matrix is singular"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn invalid_parameter_mentions_name() {
        let e = Error::InvalidParameter {
            name: "opacity",
            reason: "must be in [0, 1]".to_owned(),
        };
        assert!(e.to_string().contains("opacity"));
    }

    #[test]
    fn render_error_is_send_sync_and_displays_specifics() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RenderError>();
        let e = RenderError::InvalidResolution {
            width: 0,
            height: 480,
        };
        assert!(e.to_string().contains("0x480"));
        let e = RenderError::InvalidTileSize { tile_size: 0 };
        assert!(e.to_string().contains("tile size 0"));
        assert!(RenderError::EmptyScene.to_string().contains("no gaussians"));
    }

    #[test]
    fn serving_errors_display_their_cause() {
        let e = RenderError::Overloaded { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        assert!(RenderError::Cancelled.to_string().contains("cancelled"));
        assert!(RenderError::ShutDown.to_string().contains("shut down"));
    }

    #[test]
    fn registry_errors_name_the_scene_id() {
        let id = SceneId::from_raw(3);
        let unknown = RenderError::UnknownScene { id };
        assert!(unknown.to_string().contains("scene#3"));
        assert!(unknown.to_string().contains("never registered"));
        let evicted = RenderError::Evicted { id };
        assert!(evicted.to_string().contains("scene#3"));
        assert!(evicted.to_string().contains("evicted"));
    }

    #[test]
    fn math_errors_convert_to_configuration_errors() {
        let e: RenderError = Error::InvalidParameter {
            name: "focal",
            reason: "must be positive".to_owned(),
        }
        .into();
        match e {
            RenderError::InvalidConfiguration { reason } => {
                assert!(reason.contains("focal"));
            }
            other => panic!("unexpected conversion {other:?}"),
        }
    }
}
