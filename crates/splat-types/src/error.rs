//! Error type shared by the math and data-model layer.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or manipulating the Gaussian data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A matrix inversion was requested for a singular (non-invertible)
    /// matrix. Carries the determinant that was computed.
    SingularMatrix {
        /// Determinant of the offending matrix.
        determinant: f32,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A spherical-harmonics degree outside the supported range was used.
    UnsupportedShDegree {
        /// The requested degree.
        degree: usize,
    },
    /// A value could not be represented in the requested reduced precision.
    PrecisionOverflow {
        /// The value that overflowed.
        value: f32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { determinant } => {
                write!(f, "matrix is singular (determinant {determinant:e})")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::UnsupportedShDegree { degree } => {
                write!(f, "unsupported spherical harmonics degree {degree} (max 3)")
            }
            Error::PrecisionOverflow { value } => {
                write!(
                    f,
                    "value {value} cannot be represented in reduced precision"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = Error::SingularMatrix { determinant: 0.0 };
        let s = e.to_string();
        assert!(s.starts_with("matrix is singular"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn invalid_parameter_mentions_name() {
        let e = Error::InvalidParameter {
            name: "opacity",
            reason: "must be in [0, 1]".to_owned(),
        };
        assert!(e.to_string().contains("opacity"));
    }
}
