//! Typed identifiers for registry-managed resources.
//!
//! The serving engine's scene registry hands out a [`SceneId`] per
//! registered scene. The id is an opaque token: callers obtain one from
//! `Engine::register_scene`, pass it back through `SceneRef::Id`, and never
//! need to look inside. The raw value is still reachable
//! ([`SceneId::raw`]) for logs and JSON output, and
//! [`SceneId::from_raw`] exists so registries (and tests) can mint ids —
//! an id only means something to the engine that issued it.

use std::fmt;

/// Opaque handle to a scene registered with a serving engine.
///
/// Ids are issued monotonically per engine, so they double as registration
/// order: a smaller id was registered earlier. They are `Copy` and cheap to
/// pass around; sharing an id across threads is how many submitters serve
/// off one prepared scene.
///
/// # Examples
///
/// ```
/// use splat_types::SceneId;
///
/// let id = SceneId::from_raw(7);
/// assert_eq!(id.raw(), 7);
/// assert_eq!(id.to_string(), "scene#7");
/// assert!(SceneId::from_raw(3) < id, "ids order by registration");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SceneId(u64);

impl SceneId {
    /// Reconstructs an id from its raw value.
    ///
    /// Only meaningful for values previously observed via [`SceneId::raw`]
    /// from the same engine; a fabricated id simply misses the registry
    /// (`RenderError::UnknownScene`).
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw numeric value, for logs and JSON output.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scene#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_raw() {
        let id = SceneId::from_raw(42);
        assert_eq!(SceneId::from_raw(id.raw()), id);
    }

    #[test]
    fn orders_by_registration_order() {
        assert!(SceneId::from_raw(0) < SceneId::from_raw(1));
        let mut ids = [SceneId::from_raw(5), SceneId::from_raw(2)];
        ids.sort_unstable();
        assert_eq!(ids[0].raw(), 2);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SceneId::from_raw(0).to_string(), "scene#0");
    }

    #[test]
    fn id_is_send_sync_and_hash() {
        fn assert_send_sync<T: Send + Sync + std::hash::Hash>() {}
        assert_send_sync::<SceneId>();
    }
}
