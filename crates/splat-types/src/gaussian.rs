//! The 3D Gaussian splat data model.
//!
//! Each splat carries the learnable parameters of 3D-GS: a world-space
//! center, an anisotropic scale, a rotation quaternion, an opacity and
//! spherical-harmonics color coefficients. The 3D covariance used by the
//! preprocessing stage is `Σ = R S Sᵀ Rᵀ`.

use crate::color::Rgb;
use crate::error::{Error, Result};
use crate::half::round_trip_f16;
use crate::mat::Mat3;
use crate::quat::Quat;
use crate::sh::ShCoefficients;
use crate::vec::Vec3;

/// Numeric precision of the stored splat parameters.
///
/// The GS-TG evaluation converts models trained in 32-bit floating point to
/// 16-bit floating point before feeding the accelerator; [`Precision::Half`]
/// models that conversion by rounding every parameter through binary16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE-754 binary32 (training precision).
    #[default]
    Full,
    /// IEEE-754 binary16 (accelerator storage precision).
    Half,
}

/// A single anisotropic 3D Gaussian splat.
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian3d {
    position: Vec3,
    scale: Vec3,
    rotation: Quat,
    opacity: f32,
    sh: ShCoefficients,
}

impl Gaussian3d {
    /// Starts building a splat; see [`Gaussian3dBuilder`].
    pub fn builder() -> Gaussian3dBuilder {
        Gaussian3dBuilder::default()
    }

    /// World-space center (`3D_XYZ` in the paper's notation).
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Per-axis standard deviations of the Gaussian before rotation.
    #[inline]
    pub fn scale(&self) -> Vec3 {
        self.scale
    }

    /// Orientation of the principal axes.
    #[inline]
    pub fn rotation(&self) -> Quat {
        self.rotation
    }

    /// Opacity `σ ∈ [0, 1]`.
    #[inline]
    pub fn opacity(&self) -> f32 {
        self.opacity
    }

    /// Spherical-harmonics color coefficients (`SHs`).
    #[inline]
    pub fn sh(&self) -> &ShCoefficients {
        &self.sh
    }

    /// Returns a copy with the SH coefficients replaced and every other
    /// parameter preserved bit-exactly — no re-validation and no rotation
    /// re-normalization, so derived views (LOD tiers) stay geometrically
    /// identical to their source splat.
    pub fn with_sh(&self, sh: ShCoefficients) -> Gaussian3d {
        Gaussian3d { sh, ..self.clone() }
    }

    /// The 3×3 world-space covariance `Σ = R S Sᵀ Rᵀ` (`3D_Cov`).
    pub fn covariance(&self) -> Mat3 {
        Self::covariance_of(self.scale, self.rotation)
    }

    /// [`Gaussian3d::covariance`] from raw parameters, shared with the
    /// structure-of-arrays scene storage (`SceneSoA`) so both layouts run
    /// the exact same floating-point operations.
    pub fn covariance_of(scale: Vec3, rotation: Quat) -> Mat3 {
        let r = rotation.to_rotation_matrix();
        let s = Mat3::from_diagonal(Vec3::new(
            scale.x * scale.x,
            scale.y * scale.y,
            scale.z * scale.z,
        ));
        r * s * r.transpose()
    }

    /// Radius of a sphere that bounds the 3-sigma extent of the splat,
    /// used for conservative frustum culling.
    #[inline]
    pub fn bounding_radius(&self) -> f32 {
        Self::bounding_radius_of(self.scale)
    }

    /// [`Gaussian3d::bounding_radius`] from a raw scale, shared with the
    /// structure-of-arrays scene storage.
    #[inline]
    pub fn bounding_radius_of(scale: Vec3) -> f32 {
        3.0 * scale.max_component()
    }

    /// Evaluates the view-dependent color for a camera at `camera_position`.
    pub fn color_toward(&self, camera_position: Vec3) -> Rgb {
        let dir = (self.position - camera_position).normalized();
        self.sh.eval(dir)
    }

    /// Returns a copy with every parameter rounded through the requested
    /// precision. [`Precision::Full`] returns the splat unchanged.
    pub fn to_precision(&self, precision: Precision) -> Self {
        match precision {
            Precision::Full => self.clone(),
            Precision::Half => {
                let q = |v: f32| round_trip_f16(v);
                let qv = |v: Vec3| Vec3::new(q(v.x), q(v.y), q(v.z));
                let coeffs = self
                    .sh
                    .coefficients()
                    .iter()
                    .map(|c| Rgb::new(q(c.r), q(c.g), q(c.b)))
                    .collect();
                Self {
                    position: qv(self.position),
                    scale: qv(self.scale),
                    rotation: Quat::new(
                        q(self.rotation.w),
                        q(self.rotation.x),
                        q(self.rotation.y),
                        q(self.rotation.z),
                    )
                    .normalized(),
                    opacity: q(self.opacity),
                    sh: ShCoefficients::from_coefficients(coeffs)
                        // lint:allow(no-panic-paths): quantization preserves the validated count
                        .expect("coefficient count preserved"),
                }
            }
        }
    }

    /// Number of stored parameter scalars, used by the DRAM traffic model:
    /// 3 (position) + 3 (scale) + 4 (rotation) + 1 (opacity) + SH values.
    #[inline]
    pub fn parameter_count(&self) -> usize {
        3 + 3 + 4 + 1 + self.sh.value_count()
    }
}

/// Builder for [`Gaussian3d`] with validation of every parameter.
///
/// ```
/// use splat_types::{Gaussian3d, Vec3, Quat};
///
/// let g = Gaussian3d::builder()
///     .position(Vec3::new(1.0, 2.0, 3.0))
///     .scale(Vec3::new(0.1, 0.2, 0.05))
///     .rotation(Quat::from_axis_angle(Vec3::Z, 0.4))
///     .opacity(0.75)
///     .base_color([0.9, 0.4, 0.1])
///     .build();
/// assert_eq!(g.position(), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gaussian3dBuilder {
    position: Vec3,
    scale: Option<Vec3>,
    rotation: Quat,
    opacity: Option<f32>,
    sh: Option<ShCoefficients>,
}

impl Gaussian3dBuilder {
    /// Sets the world-space center.
    pub fn position(mut self, position: Vec3) -> Self {
        self.position = position;
        self
    }

    /// Sets the per-axis standard deviations (must be positive).
    pub fn scale(mut self, scale: Vec3) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Sets the orientation.
    pub fn rotation(mut self, rotation: Quat) -> Self {
        self.rotation = rotation;
        self
    }

    /// Sets the opacity in `[0, 1]`.
    pub fn opacity(mut self, opacity: f32) -> Self {
        self.opacity = Some(opacity);
        self
    }

    /// Sets a view-independent base color (degree-0 SH).
    pub fn base_color(mut self, rgb: [f32; 3]) -> Self {
        self.sh = Some(ShCoefficients::constant(Rgb::from(rgb)));
        self
    }

    /// Sets full spherical-harmonics coefficients.
    pub fn sh(mut self, sh: ShCoefficients) -> Self {
        self.sh = Some(sh);
        self
    }

    /// Builds the splat, falling back to documented defaults
    /// (scale `0.01`, opacity `0.5`, mid-gray color) for unset fields.
    ///
    /// # Panics
    ///
    /// Panics if a set parameter is invalid; use [`Self::try_build`] for a
    /// fallible variant.
    pub fn build(self) -> Gaussian3d {
        // lint:allow(no-panic-paths): documented panicking builder; try_build is the typed path
        self.try_build().expect("invalid Gaussian3d parameters")
    }

    /// Fallible variant of [`Self::build`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the scale is not strictly
    /// positive, the opacity is outside `[0, 1]`, or the position is not
    /// finite.
    pub fn try_build(self) -> Result<Gaussian3d> {
        let scale = self.scale.unwrap_or(Vec3::splat(0.01));
        if !(scale.x > 0.0 && scale.y > 0.0 && scale.z > 0.0 && scale.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "scale",
                reason: format!("components must be strictly positive, got {scale:?}"),
            });
        }
        let opacity = self.opacity.unwrap_or(0.5);
        if !(0.0..=1.0).contains(&opacity) || !opacity.is_finite() {
            return Err(Error::InvalidParameter {
                name: "opacity",
                reason: format!("must be in [0, 1], got {opacity}"),
            });
        }
        if !self.position.is_finite() {
            return Err(Error::InvalidParameter {
                name: "position",
                reason: "components must be finite".to_owned(),
            });
        }
        Ok(Gaussian3d {
            position: self.position,
            scale,
            rotation: self.rotation.normalized(),
            opacity,
            sh: self.sh.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    fn sample() -> Gaussian3d {
        Gaussian3d::builder()
            .position(Vec3::new(0.5, -0.2, 2.0))
            .scale(Vec3::new(0.3, 0.1, 0.05))
            .rotation(Quat::from_euler(0.4, 0.1, -0.3))
            .opacity(0.8)
            .base_color([0.7, 0.3, 0.2])
            .build()
    }

    #[test]
    fn covariance_is_symmetric_positive_definite() {
        let g = sample();
        let cov = g.covariance();
        for r in 0..3 {
            for c in 0..3 {
                assert!(approx(cov.at(r, c), cov.at(c, r)), "symmetry ({r},{c})");
            }
        }
        // Determinant of R S^2 R^T is the product of squared scales.
        let expected_det = (g.scale().x * g.scale().y * g.scale().z).powi(2);
        assert!(approx(cov.determinant(), expected_det));
    }

    #[test]
    fn identity_rotation_covariance_is_diagonal() {
        let g = Gaussian3d::builder()
            .scale(Vec3::new(0.2, 0.3, 0.4))
            .opacity(1.0)
            .build();
        let cov = g.covariance();
        assert!(approx(cov.at(0, 0), 0.04));
        assert!(approx(cov.at(1, 1), 0.09));
        assert!(approx(cov.at(2, 2), 0.16));
        assert!(approx(cov.at(0, 1), 0.0));
    }

    #[test]
    fn bounding_radius_is_three_sigma() {
        let g = Gaussian3d::builder()
            .scale(Vec3::new(0.1, 0.5, 0.2))
            .build();
        assert!(approx(g.bounding_radius(), 1.5));
    }

    #[test]
    fn builder_rejects_bad_opacity() {
        let result = Gaussian3d::builder().opacity(1.5).try_build();
        assert!(matches!(
            result,
            Err(Error::InvalidParameter {
                name: "opacity",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_non_positive_scale() {
        let result = Gaussian3d::builder()
            .scale(Vec3::new(0.1, 0.0, 0.1))
            .try_build();
        assert!(matches!(
            result,
            Err(Error::InvalidParameter { name: "scale", .. })
        ));
    }

    #[test]
    fn builder_rejects_non_finite_position() {
        let result = Gaussian3d::builder()
            .position(Vec3::new(f32::NAN, 0.0, 0.0))
            .try_build();
        assert!(result.is_err());
    }

    #[test]
    fn half_precision_round_trip_stays_close() {
        let g = sample();
        let h = g.to_precision(Precision::Half);
        assert!((g.position() - h.position()).length() < 1e-2);
        assert!((g.opacity() - h.opacity()).abs() < 1e-2);
        // Rotation stays a unit quaternion.
        assert!(approx(h.rotation().norm(), 1.0));
    }

    #[test]
    fn full_precision_is_identity() {
        let g = sample();
        assert_eq!(g.to_precision(Precision::Full), g);
    }

    #[test]
    fn parameter_count_accounts_for_sh() {
        let g = sample(); // degree-0 SH: 3 values
        assert_eq!(g.parameter_count(), 3 + 3 + 4 + 1 + 3);
    }

    #[test]
    fn color_toward_is_view_independent_for_constant_sh() {
        let g = sample();
        let a = g.color_toward(Vec3::ZERO);
        let b = g.color_toward(Vec3::new(10.0, -5.0, 3.0));
        assert!(a.max_abs_diff(b) < 1e-5);
    }

    #[test]
    fn covariance_determinant_matches_scales() {
        let mut rng = Rng::seed_from_u64(0xA5A5_5A5A_DEAD_BEEF);
        for case in 0..300 {
            let sx = rng.range_f32(0.01, 1.0);
            let sy = rng.range_f32(0.01, 1.0);
            let sz = rng.range_f32(0.01, 1.0);
            let g = Gaussian3d::builder()
                .scale(Vec3::new(sx, sy, sz))
                .rotation(Quat::from_euler(
                    rng.range_f32(-3.0, 3.0),
                    rng.range_f32(-1.5, 1.5),
                    rng.range_f32(-3.0, 3.0),
                ))
                .build();
            let det = g.covariance().determinant();
            let expected = (sx * sy * sz).powi(2);
            assert!(
                (det - expected).abs() < 1e-3 * (1.0 + expected),
                "case {case}: det {det} expected {expected}"
            );
        }
    }

    #[test]
    fn builder_accepts_valid_opacity() {
        for i in 0..=100 {
            let op = i as f32 / 100.0;
            assert!(
                Gaussian3d::builder().opacity(op).try_build().is_ok(),
                "opacity {op}"
            );
        }
    }
}
