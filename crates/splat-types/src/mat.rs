//! Small square matrices (`Mat2`, `Mat3`, `Mat4`) over `f32`.
//!
//! Matrices are stored column-major (matching the usual graphics convention)
//! and provide exactly the operations required by the splatting pipeline:
//! multiplication, transpose, inversion, determinants and the symmetric
//! 2×2 eigendecomposition used to derive screen-space splat extents.

use crate::error::{Error, Result};
use crate::vec::{Vec2, Vec3, Vec4};
use std::ops::{Add, Mul, Sub};

/// A 2×2 single-precision matrix (projected 2D covariance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Columns of the matrix.
    pub cols: [Vec2; 2],
}

/// A 3×3 single-precision matrix (3D covariance, rotations, Jacobians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Columns of the matrix.
    pub cols: [Vec3; 3],
}

/// A 4×4 single-precision matrix (view and projection transforms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat2 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)],
    };

    /// The zero matrix.
    pub const ZERO: Self = Self {
        cols: [Vec2::ZERO, Vec2::ZERO],
    };

    /// Builds a matrix from two columns.
    #[inline]
    pub const fn from_cols(c0: Vec2, c1: Vec2) -> Self {
        Self { cols: [c0, c1] }
    }

    /// Builds a matrix from row-major scalar entries.
    #[inline]
    pub const fn from_rows(m00: f32, m01: f32, m10: f32, m11: f32) -> Self {
        Self::from_cols(Vec2::new(m00, m10), Vec2::new(m01, m11))
    }

    /// Builds a symmetric matrix from the upper-triangular entries
    /// `[a, b; b, c]`, the storage format used for 2D covariances.
    #[inline]
    pub const fn from_symmetric(a: f32, b: f32, c: f32) -> Self {
        Self::from_rows(a, b, b, c)
    }

    /// Entry accessor: `row`, `col`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Determinant.
    #[inline]
    pub fn determinant(&self) -> f32 {
        self.at(0, 0) * self.at(1, 1) - self.at(0, 1) * self.at(1, 0)
    }

    /// Trace (sum of the diagonal).
    #[inline]
    pub fn trace(&self) -> f32 {
        self.at(0, 0) + self.at(1, 1)
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when the determinant magnitude is
    /// below `1e-12`, which for a covariance matrix corresponds to a fully
    /// degenerate splat.
    pub fn inverse(&self) -> Result<Self> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return Err(Error::SingularMatrix { determinant: det });
        }
        let inv_det = 1.0 / det;
        Ok(Self::from_rows(
            self.at(1, 1) * inv_det,
            -self.at(0, 1) * inv_det,
            -self.at(1, 0) * inv_det,
            self.at(0, 0) * inv_det,
        ))
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::from_rows(self.at(0, 0), self.at(1, 0), self.at(0, 1), self.at(1, 1))
    }

    /// Eigenvalues of a *symmetric* 2×2 matrix, returned as
    /// `(lambda_max, lambda_min)`.
    ///
    /// The caller is responsible for only passing symmetric matrices (2D
    /// covariances); the off-diagonal entries are averaged defensively.
    #[inline]
    pub fn symmetric_eigenvalues(&self) -> (f32, f32) {
        let a = self.at(0, 0);
        let b = 0.5 * (self.at(0, 1) + self.at(1, 0));
        let c = self.at(1, 1);
        let mid = 0.5 * (a + c);
        let disc = (0.25 * (a - c) * (a - c) + b * b).max(0.0).sqrt();
        (mid + disc, mid - disc)
    }

    /// Eigenvectors of a *symmetric* 2×2 matrix, returned as unit vectors
    /// `(v_max, v_min)` matching [`Mat2::symmetric_eigenvalues`].
    pub fn symmetric_eigenvectors(&self) -> (Vec2, Vec2) {
        let a = self.at(0, 0);
        let b = 0.5 * (self.at(0, 1) + self.at(1, 0));
        let c = self.at(1, 1);
        let (l_max, _) = self.symmetric_eigenvalues();
        let v_max = if b.abs() > 1e-12 {
            Vec2::new(l_max - c, b).normalized()
        } else if a >= c {
            Vec2::new(1.0, 0.0)
        } else {
            Vec2::new(0.0, 1.0)
        };
        let v_min = Vec2::new(-v_max.y, v_max.x);
        (v_max, v_min)
    }

    /// Multiplies the matrix by a column vector.
    #[inline]
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        self.cols[0] * v.x + self.cols[1] * v.y
    }
}

impl Mul for Mat2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_cols(self.mul_vec(rhs.cols[0]), self.mul_vec(rhs.cols[1]))
    }
}

impl Add for Mat2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_cols(self.cols[0] + rhs.cols[0], self.cols[1] + rhs.cols[1])
    }
}

impl Sub for Mat2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_cols(self.cols[0] - rhs.cols[0], self.cols[1] - rhs.cols[1])
    }
}

impl Mul<f32> for Mat2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        Self::from_cols(self.cols[0] * rhs, self.cols[1] * rhs)
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ],
    };

    /// The zero matrix.
    pub const ZERO: Self = Self {
        cols: [Vec3::ZERO, Vec3::ZERO, Vec3::ZERO],
    };

    /// Builds a matrix from three columns.
    #[inline]
    pub const fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self { cols: [c0, c1, c2] }
    }

    /// Builds a matrix from row-major scalar entries.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub const fn from_rows(
        m00: f32,
        m01: f32,
        m02: f32,
        m10: f32,
        m11: f32,
        m12: f32,
        m20: f32,
        m21: f32,
        m22: f32,
    ) -> Self {
        Self::from_cols(
            Vec3::new(m00, m10, m20),
            Vec3::new(m01, m11, m21),
            Vec3::new(m02, m12, m22),
        )
    }

    /// Builds a diagonal matrix.
    #[inline]
    pub const fn from_diagonal(d: Vec3) -> Self {
        Self::from_rows(d.x, 0.0, 0.0, 0.0, d.y, 0.0, 0.0, 0.0, d.z)
    }

    /// Entry accessor: `row`, `col`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_rows(
            self.at(0, 0),
            self.at(1, 0),
            self.at(2, 0),
            self.at(0, 1),
            self.at(1, 1),
            self.at(2, 1),
            self.at(0, 2),
            self.at(1, 2),
            self.at(2, 2),
        )
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        let c = &self.cols;
        c[0].dot(c[1].cross(c[2]))
    }

    /// Matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] for (near-)singular input.
    pub fn inverse(&self) -> Result<Self> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return Err(Error::SingularMatrix { determinant: det });
        }
        let c = &self.cols;
        let inv_det = 1.0 / det;
        let r0 = c[1].cross(c[2]) * inv_det;
        let r1 = c[2].cross(c[0]) * inv_det;
        let r2 = c[0].cross(c[1]) * inv_det;
        // Rows of the inverse are the scaled cross products; build from rows.
        Ok(Self::from_rows(
            r0.x, r0.y, r0.z, r1.x, r1.y, r1.z, r2.x, r2.y, r2.z,
        ))
    }

    /// Multiplies the matrix by a column vector.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }

    /// Extracts the upper-left 2×2 block (used when projecting a 3D
    /// covariance to the screen).
    #[inline]
    pub fn upper_left_2x2(&self) -> Mat2 {
        Mat2::from_rows(self.at(0, 0), self.at(0, 1), self.at(1, 0), self.at(1, 1))
    }
}

impl Mul for Mat3 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_cols(
            self.mul_vec(rhs.cols[0]),
            self.mul_vec(rhs.cols[1]),
            self.mul_vec(rhs.cols[2]),
        )
    }
}

impl Add for Mat3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_cols(
            self.cols[0] + rhs.cols[0],
            self.cols[1] + rhs.cols[1],
            self.cols[2] + rhs.cols[2],
        )
    }
}

impl Sub for Mat3 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_cols(
            self.cols[0] - rhs.cols[0],
            self.cols[1] - rhs.cols[1],
            self.cols[2] - rhs.cols[2],
        )
    }
}

impl Mul<f32> for Mat3 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        Self::from_cols(self.cols[0] * rhs, self.cols[1] * rhs, self.cols[2] * rhs)
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Entry accessor: `row`, `col`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Multiplies the matrix by a column vector.
    #[inline]
    pub fn mul_vec(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a 3D point (implicit `w = 1`).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        self.mul_vec(p.extend(1.0))
    }

    /// Transforms a 3D direction (implicit `w = 0`).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec(d.extend(0.0)).truncate()
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_cols(
            Vec4::new(self.at(0, 0), self.at(0, 1), self.at(0, 2), self.at(0, 3)),
            Vec4::new(self.at(1, 0), self.at(1, 1), self.at(1, 2), self.at(1, 3)),
            Vec4::new(self.at(2, 0), self.at(2, 1), self.at(2, 2), self.at(2, 3)),
            Vec4::new(self.at(3, 0), self.at(3, 1), self.at(3, 2), self.at(3, 3)),
        )
    }

    /// Extracts the upper-left 3×3 rotation/scale block.
    pub fn upper_left_3x3(&self) -> Mat3 {
        Mat3::from_cols(
            self.cols[0].truncate(),
            self.cols[1].truncate(),
            self.cols[2].truncate(),
        )
    }

    /// Builds a rigid transform from a rotation matrix and translation.
    pub fn from_rotation_translation(rot: Mat3, t: Vec3) -> Self {
        Self::from_cols(
            rot.cols[0].extend(0.0),
            rot.cols[1].extend(0.0),
            rot.cols[2].extend(0.0),
            t.extend(1.0),
        )
    }

    /// Right-handed look-at view matrix (camera looks along -Z in view
    /// space, matching the OpenGL convention used by the 3D-GS reference
    /// renderer).
    pub fn look_at_rh(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Right-handed perspective projection with a `[0, 1]`-style depth range
    /// mapped to normalized device coordinates `[-1, 1]`.
    pub fn perspective_rh(fov_y: f32, aspect: f32, z_near: f32, z_far: f32) -> Self {
        let f = 1.0 / (0.5 * fov_y).tan();
        let range = z_far - z_near;
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, -(z_far + z_near) / range, -1.0),
            Vec4::new(0.0, 0.0, -2.0 * z_far * z_near / range, 0.0),
        )
    }
}

impl Mul for Mat4 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_cols(
            self.mul_vec(rhs.cols[0]),
            self.mul_vec(rhs.cols[1]),
            self.mul_vec(rhs.cols[2]),
            self.mul_vec(rhs.cols[3]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    fn mat2_approx(a: &Mat2, b: &Mat2) -> bool {
        (0..2).all(|r| (0..2).all(|c| approx(a.at(r, c), b.at(r, c))))
    }

    fn mat3_approx(a: &Mat3, b: &Mat3) -> bool {
        (0..3).all(|r| (0..3).all(|c| approx(a.at(r, c), b.at(r, c))))
    }

    #[test]
    fn mat2_inverse_round_trip() {
        let m = Mat2::from_rows(2.0, 1.0, 1.0, 3.0);
        let inv = m.inverse().expect("invertible");
        assert!(mat2_approx(&(m * inv), &Mat2::IDENTITY));
    }

    #[test]
    fn mat2_singular_inverse_fails() {
        let m = Mat2::from_rows(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_err());
    }

    #[test]
    fn mat2_symmetric_eigenvalues_of_diagonal() {
        let m = Mat2::from_symmetric(4.0, 0.0, 1.0);
        let (l1, l2) = m.symmetric_eigenvalues();
        assert!(approx(l1, 4.0));
        assert!(approx(l2, 1.0));
    }

    #[test]
    fn mat2_eigenvectors_are_orthonormal() {
        let m = Mat2::from_symmetric(3.0, 1.2, 2.0);
        let (v1, v2) = m.symmetric_eigenvectors();
        assert!(approx(v1.length(), 1.0));
        assert!(approx(v2.length(), 1.0));
        assert!(approx(v1.dot(v2), 0.0));
    }

    #[test]
    fn mat2_eigen_reconstruction() {
        // A = V diag(l) V^T for symmetric A.
        let m = Mat2::from_symmetric(5.0, -1.5, 2.0);
        let (l1, l2) = m.symmetric_eigenvalues();
        let (v1, v2) = m.symmetric_eigenvectors();
        let recon = |r: usize, c: usize| -> f32 { l1 * v1[r] * v1[c] + l2 * v2[r] * v2[c] };
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx(recon(r, c), m.at(r, c)), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let m = Mat3::from_rows(2.0, 0.5, 0.0, -1.0, 3.0, 0.2, 0.0, 0.1, 1.5);
        let inv = m.inverse().expect("invertible");
        assert!(mat3_approx(&(m * inv), &Mat3::IDENTITY));
    }

    #[test]
    fn mat3_singular_inverse_fails() {
        let m = Mat3::from_rows(1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 0.0, 1.0, 1.0);
        assert!(m.inverse().is_err());
    }

    #[test]
    fn mat3_determinant_of_diagonal() {
        let m = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx(m.determinant(), 24.0));
    }

    #[test]
    fn mat4_look_at_places_eye_at_origin() {
        let eye = Vec3::new(1.0, 2.0, 3.0);
        let view = Mat4::look_at_rh(eye, Vec3::ZERO, Vec3::Y);
        let p = view.transform_point(eye).project().expect("finite w");
        assert!(approx(p.x, 0.0) && approx(p.y, 0.0) && approx(p.z, 0.0));
    }

    #[test]
    fn mat4_look_at_target_is_in_front() {
        // Looking down -Z in view space: the target must have negative z.
        let view = Mat4::look_at_rh(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO, Vec3::Y);
        let p = view
            .transform_point(Vec3::ZERO)
            .project()
            .expect("finite w");
        assert!(p.z < 0.0);
    }

    #[test]
    fn mat4_perspective_maps_near_and_far() {
        let proj = Mat4::perspective_rh(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let near = proj
            .transform_point(Vec3::new(0.0, 0.0, -0.1))
            .project()
            .expect("finite");
        let far = proj
            .transform_point(Vec3::new(0.0, 0.0, -100.0))
            .project()
            .expect("finite");
        assert!(approx(near.z, -1.0));
        assert!(approx(far.z, 1.0));
    }

    #[test]
    fn mat4_transform_dir_ignores_translation() {
        let m = Mat4::from_rotation_translation(Mat3::IDENTITY, Vec3::new(5.0, 6.0, 7.0));
        assert_eq!(m.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn upper_left_blocks_match() {
        let m3 = Mat3::from_rows(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0);
        let m2 = m3.upper_left_2x2();
        assert_eq!(m2.at(0, 0), 1.0);
        assert_eq!(m2.at(0, 1), 2.0);
        assert_eq!(m2.at(1, 0), 4.0);
        assert_eq!(m2.at(1, 1), 5.0);
    }

    #[test]
    fn mat2_symmetric_eigenvalues_are_ordered() {
        let mut rng = Rng::seed_from_u64(0x0123_4567_89AB_CDEF);
        for case in 0..500 {
            let m = Mat2::from_symmetric(
                rng.range_f32(-10.0, 10.0),
                rng.range_f32(-10.0, 10.0),
                rng.range_f32(-10.0, 10.0),
            );
            let (l1, l2) = m.symmetric_eigenvalues();
            assert!(l1 >= l2, "case {case}");
            // Trace and determinant are preserved by the eigendecomposition.
            assert!(approx(l1 + l2, m.trace()), "case {case}");
            assert!(
                (l1 * l2 - m.determinant()).abs() <= 1e-2 * (1.0 + m.determinant().abs()),
                "case {case}"
            );
        }
    }

    #[test]
    fn mat3_transpose_is_involutive() {
        let mut rng = Rng::seed_from_u64(0xFEDC_BA98_7654_3210);
        for _ in 0..300 {
            let v: Vec<f32> = (0..9).map(|_| rng.range_f32(-10.0, 10.0)).collect();
            let m = Mat3::from_rows(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8]);
            assert_eq!(m.transpose().transpose(), m);
        }
    }

    #[test]
    fn mat3_inverse_when_it_exists_round_trips() {
        let mut rng = Rng::seed_from_u64(0x1111_2222_3333_4444);
        let mut tested = 0;
        while tested < 200 {
            let v: Vec<f32> = (0..9).map(|_| rng.range_f32(-5.0, 5.0)).collect();
            let m = Mat3::from_rows(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8]);
            // Only well-conditioned matrices: skip nearly singular draws.
            if m.determinant().abs() <= 0.5 {
                continue;
            }
            tested += 1;
            let inv = m.inverse().unwrap();
            let id = m * inv;
            assert!(mat3_approx(&id, &Mat3::IDENTITY));
        }
    }
}
