//! Linear RGB color values.

use crate::vec::Vec3;
use std::ops::{Add, AddAssign, Mul};

/// A linear-space RGB color with unclamped `f32` channels.
///
/// Colors stay unclamped throughout α-blending (matching the reference
/// 3D-GS rasterizer) and are only clamped when written to an 8-bit
/// framebuffer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
}

impl Rgb {
    /// Pure black.
    pub const BLACK: Self = Self::new(0.0, 0.0, 0.0);
    /// Pure white.
    pub const WHITE: Self = Self::new(1.0, 1.0, 1.0);

    /// Creates a color from its channels.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32) -> Self {
        Self { r, g, b }
    }

    /// Creates a gray color with all channels equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self::new(v, v, v)
    }

    /// Clamps every channel to `[0, 1]`.
    #[inline]
    pub fn clamped(self) -> Self {
        Self::new(
            self.r.clamp(0.0, 1.0),
            self.g.clamp(0.0, 1.0),
            self.b.clamp(0.0, 1.0),
        )
    }

    /// Converts to an 8-bit sRGB-less triplet (plain linear quantization,
    /// sufficient for image diffing in tests).
    #[inline]
    pub fn to_u8(self) -> [u8; 3] {
        let c = self.clamped();
        [
            (c.r * 255.0 + 0.5) as u8,
            (c.g * 255.0 + 0.5) as u8,
            (c.b * 255.0 + 0.5) as u8,
        ]
    }

    /// Maximum absolute per-channel difference to another color.
    #[inline]
    pub fn max_abs_diff(self, other: Self) -> f32 {
        (self.r - other.r)
            .abs()
            .max((self.g - other.g).abs())
            .max((self.b - other.b).abs())
    }

    /// Mean of the three channels (luma proxy used by scene statistics).
    #[inline]
    pub fn mean(self) -> f32 {
        (self.r + self.g + self.b) / 3.0
    }

    /// Returns `true` when every channel is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.r.is_finite() && self.g.is_finite() && self.b.is_finite()
    }
}

impl From<Vec3> for Rgb {
    #[inline]
    fn from(v: Vec3) -> Self {
        Self::new(v.x, v.y, v.z)
    }
}

impl From<Rgb> for Vec3 {
    #[inline]
    fn from(c: Rgb) -> Self {
        Vec3::new(c.r, c.g, c.b)
    }
}

impl From<[f32; 3]> for Rgb {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl Add for Rgb {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.r + rhs.r, self.g + rhs.g, self.b + rhs.b)
    }
}

impl AddAssign for Rgb {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.r += rhs.r;
        self.g += rhs.g;
        self.b += rhs.b;
    }
}

impl Mul<f32> for Rgb {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        Self::new(self.r * rhs, self.g * rhs, self.b * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bounds_channels() {
        let c = Rgb::new(-0.5, 0.5, 1.5).clamped();
        assert_eq!(c, Rgb::new(0.0, 0.5, 1.0));
    }

    #[test]
    fn u8_conversion_rounds() {
        assert_eq!(Rgb::new(1.0, 0.0, 0.5).to_u8(), [255, 0, 128]);
    }

    #[test]
    fn max_abs_diff_picks_largest_channel() {
        let a = Rgb::new(0.1, 0.5, 0.9);
        let b = Rgb::new(0.2, 0.1, 0.85);
        assert!((a.max_abs_diff(b) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn blending_arithmetic_matches_vec() {
        let c = Rgb::new(0.25, 0.5, 0.75) * 0.5 + Rgb::splat(0.1);
        assert!((c.r - 0.225).abs() < 1e-6);
        assert!((c.g - 0.35).abs() < 1e-6);
        assert!((c.b - 0.475).abs() < 1e-6);
    }

    #[test]
    fn vec3_round_trip() {
        let c = Rgb::new(0.3, 0.6, 0.9);
        let v: Vec3 = c.into();
        assert_eq!(Rgb::from(v), c);
    }
}
