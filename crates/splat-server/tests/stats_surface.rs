//! Pins the `ServerStats` observability surface: every counter is
//! carried by `to_json` and `Display`, and the documented routing and
//! status identities reconcile.

use splat_server::ServerStats;

fn sample() -> ServerStats {
    // `ServerStats` is `#[non_exhaustive]`, so build by mutation.
    let mut stats = ServerStats::default();
    stats.accepted = 12;
    stats.refused_connections = 3;
    stats.active_connections = 2;
    stats.requests = 11;
    stats.scenes_requests = 1;
    stats.render_requests = 6;
    stats.trajectory_requests = 1;
    stats.stats_requests = 1;
    stats.health_requests = 1;
    stats.shutdown_requests = 0;
    stats.unrouted_requests = 1;
    stats.ok = 7;
    stats.bad_request = 1;
    stats.not_found = 1;
    stats.gone = 0;
    stats.payload_too_large = 1;
    stats.overloaded = 1;
    stats.frames_streamed = 5;
    stats.bytes_in = 4096;
    stats.bytes_out = 65536;
    stats
}

#[test]
fn json_covers_every_counter() {
    let stats = sample();
    let json = stats.to_json();
    for field in [
        "\"accepted\":12",
        "\"refused_connections\":3",
        "\"active_connections\":2",
        "\"requests\":11",
        "\"scenes_requests\":1",
        "\"render_requests\":6",
        "\"trajectory_requests\":1",
        "\"stats_requests\":1",
        "\"health_requests\":1",
        "\"shutdown_requests\":0",
        "\"unrouted_requests\":1",
        "\"ok\":7",
        "\"bad_request\":1",
        "\"not_found\":1",
        "\"gone\":0",
        "\"payload_too_large\":1",
        "\"overloaded\":1",
        "\"frames_streamed\":5",
        "\"bytes_in\":4096",
        "\"bytes_out\":65536",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn display_covers_every_counter() {
    let text = sample().to_string();
    for token in [
        "12 accepted",
        "3 refused_connections",
        "2 active_connections",
        "1 scenes_requests",
        "6 render_requests",
        "1 trajectory_requests",
        "1 stats_requests",
        "1 health_requests",
        "0 shutdown_requests",
        "1 unrouted_requests",
        "7 ok",
        "1 bad_request",
        "1 not_found",
        "0 gone",
        "1 payload_too_large",
        "1 overloaded",
        "5 frames_streamed",
        "4096 bytes_in",
        "65536 bytes_out",
    ] {
        assert!(text.contains(token), "missing `{token}` in `{text}`");
    }
}

#[test]
fn routing_and_status_identities_reconcile() {
    let stats = sample();
    assert_eq!(stats.routed(), stats.requests);
    assert_eq!(stats.responded(), stats.requests);
}
