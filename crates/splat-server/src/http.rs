//! Minimal HTTP/1.1 framing: request parsing and response writing.
//!
//! Only what the front door needs, implemented over `std::io` so the
//! workspace stays dependency-free. Requests are framed by
//! `Content-Length` (chunked *request* bodies are rejected); responses
//! are either `Content-Length`-framed or chunked (trajectory streams).
//! Every parse failure is a typed [`HttpError`] whose `Display` text
//! becomes the 400 body, and every writer returns the exact byte count
//! it put on the wire so [`ServerStats::bytes_out`] stays truthful.
//!
//! [`ServerStats::bytes_out`]: crate::ServerStats::bytes_out

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all header lines, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A malformed or over-limit request. `Display` is wire-facing: it is
/// returned verbatim as the 400/413 response body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD PATH HTTP/1.x`.
    BadRequestLine,
    /// A header line had no `:` separator.
    BadHeader,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// Request line plus headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength,
    /// Declared `Content-Length` exceeds the configured body limit.
    BodyTooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The connection ended (or timed out) before the declared body
    /// arrived.
    TruncatedBody,
    /// A `Transfer-Encoding` request body (the server only accepts
    /// `Content-Length` framing).
    UnsupportedTransferEncoding,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::TooManyHeaders => write!(f, "too many request headers"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadContentLength => write!(f, "invalid Content-Length header"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::TruncatedBody => {
                write!(f, "request body ended before the declared Content-Length")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "request bodies must use Content-Length framing")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// HTTP status code for an [`HttpError`] (413 for over-limit bodies,
/// 400 for everything else).
pub fn status_for_http_error(error: &HttpError) -> u16 {
    match error {
        HttpError::BodyTooLarge { .. } => 413,
        _ => 400,
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/render` (query strings are kept
    /// verbatim; the router matches the full target).
    pub path: String,
    /// `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name compared lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }
}

/// Outcome of reading one request off a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request plus the number of head bytes consumed
    /// (request line and headers; add `request.body.len()` for the
    /// full wire size).
    Request {
        /// The parsed request.
        request: Request,
        /// Bytes consumed by the request line and headers.
        head_bytes: usize,
    },
    /// The peer closed (or went idle past the read timeout) before
    /// sending a request — the normal end of a keep-alive connection.
    Closed,
    /// The peer sent bytes that do not frame a request.
    Malformed(HttpError),
}

/// Reads one `\r\n`- (or `\n`-) terminated line, stripped of the
/// terminator. `Ok(None)` means EOF before any byte.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> io::Result<Result<Option<String>, HttpError>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(Ok(None));
                }
                return Ok(Err(HttpError::BadRequestLine));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Ok(Err(HttpError::HeadTooLarge));
                }
                *budget -= 1;
                let value = byte.first().copied().unwrap_or_default();
                if value == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line).map_err(|_| HttpError::BadRequestLine);
                    return Ok(text.map(Some));
                }
                line.push(value);
            }
            Err(error) => return Err(error),
        }
    }
}

/// Reads one request. Socket-level errors surface as `Err(io::Error)`
/// only when they are not attributable to the peer: timeouts and EOF
/// mid-request map to [`ReadOutcome::Malformed`] /
/// [`ReadOutcome::Closed`] so a slow or rude client degrades to a 400,
/// not a worker failure.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> io::Result<ReadOutcome> {
    let mut budget = MAX_HEAD_BYTES;

    let request_line = match read_line(reader, &mut budget) {
        Ok(Ok(None)) => return Ok(ReadOutcome::Closed),
        Ok(Ok(Some(line))) => line,
        Ok(Err(error)) => return Ok(ReadOutcome::Malformed(error)),
        Err(error) if is_peer_error(&error) => return Ok(ReadOutcome::Closed),
        Err(error) => return Err(error),
    };

    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version), None) => (method, path, version),
        _ => return Ok(ReadOutcome::Malformed(HttpError::BadRequestLine)),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(HttpError::BadRequestLine));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget) {
            Ok(Ok(Some(line))) => line,
            Ok(Ok(None)) => return Ok(ReadOutcome::Malformed(HttpError::BadRequestLine)),
            Ok(Err(error)) => return Ok(ReadOutcome::Malformed(error)),
            Err(error) if is_peer_error(&error) => {
                return Ok(ReadOutcome::Malformed(HttpError::TruncatedBody))
            }
            Err(error) => return Err(error),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Ok(ReadOutcome::Malformed(HttpError::TooManyHeaders));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(HttpError::BadHeader));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let head_bytes = MAX_HEAD_BYTES - budget;

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        return Ok(ReadOutcome::Malformed(
            HttpError::UnsupportedTransferEncoding,
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(text) => match text.parse::<usize>() {
            Ok(length) => length,
            Err(_) => return Ok(ReadOutcome::Malformed(HttpError::BadContentLength)),
        },
    };
    if content_length > max_body {
        // Do not read the body: the refusal must not cost the declared
        // bytes. The connection is closed after the 413 response.
        return Ok(ReadOutcome::Malformed(HttpError::BodyTooLarge {
            limit: max_body,
        }));
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        match reader.read_exact(&mut body) {
            Ok(()) => request.body = body,
            Err(error) if is_peer_error(&error) => {
                return Ok(ReadOutcome::Malformed(HttpError::TruncatedBody))
            }
            Err(error) => return Err(error),
        }
    }

    Ok(ReadOutcome::Request {
        request,
        head_bytes,
    })
}

/// Errors caused by the peer's behavior (disconnect, stall past the
/// read timeout) rather than by the server.
fn is_peer_error(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        410 => "Gone",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Content-Length`-framed response; returns the
/// bytes put on the wire.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason_phrase(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(head.len() as u64 + body.len() as u64)
}

/// Writes the head of a chunked response; the caller then emits
/// [`write_chunk`]s and a final [`finish_chunks`].
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n",
        reason_phrase(status),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(head.len() as u64)
}

/// Writes one non-empty chunk; returns the bytes put on the wire
/// (framing included). Empty payloads are skipped (an empty chunk
/// would terminate the stream).
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> io::Result<u64> {
    if data.is_empty() {
        return Ok(0);
    }
    let frame = format!("{:x}\r\n", data.len());
    stream.write_all(frame.as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()?;
    Ok(frame.len() as u64 + data.len() as u64 + 2)
}

/// Terminates a chunked response; returns the bytes put on the wire.
pub fn finish_chunks(stream: &mut impl Write) -> io::Result<u64> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()?;
    Ok(5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8], max_body: usize) -> ReadOutcome {
        let mut reader = BufReader::new(bytes);
        read_request(&mut reader, max_body).expect("no io error on in-memory reader")
    }

    #[test]
    fn parses_a_request_with_headers_and_body() {
        let wire = b"POST /render HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match parse(wire, 1024) {
            ReadOutcome::Request {
                request,
                head_bytes,
            } => {
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/render");
                assert_eq!(request.header("host"), Some("x"));
                assert_eq!(request.header("content-length"), Some("4"));
                assert_eq!(request.body, b"abcd");
                assert_eq!(head_bytes + request.body.len(), wire.len());
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_eof_reads_as_closed() {
        assert!(matches!(parse(b"", 1024), ReadOutcome::Closed));
    }

    #[test]
    fn malformed_frames_map_to_typed_errors() {
        assert!(matches!(
            parse(b"GET\r\n\r\n", 1024),
            ReadOutcome::Malformed(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 1024),
            ReadOutcome::Malformed(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: zero\r\n\r\n", 1024),
            ReadOutcome::Malformed(HttpError::BadContentLength)
        ));
        assert!(matches!(
            parse(
                b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                1024
            ),
            ReadOutcome::Malformed(HttpError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn oversized_content_length_is_refused_without_reading_the_body() {
        let outcome = parse(b"POST /scenes HTTP/1.1\r\nContent-Length: 4096\r\n\r\n", 64);
        match outcome {
            ReadOutcome::Malformed(error) => {
                assert_eq!(error, HttpError::BodyTooLarge { limit: 64 });
                assert_eq!(status_for_http_error(&error), 413);
            }
            other => panic!("expected 413 refusal, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_a_typed_400_not_an_io_error() {
        let outcome = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024);
        match outcome {
            ReadOutcome::Malformed(error) => {
                assert_eq!(error, HttpError::TruncatedBody);
                assert_eq!(status_for_http_error(&error), 400);
            }
            other => panic!("expected truncated-body refusal, got {other:?}"),
        }
    }

    #[test]
    fn response_writers_report_exact_wire_bytes() {
        let mut wire = Vec::new();
        let written =
            write_response(&mut wire, 200, &[], "text/plain", b"ok\n").expect("write to vec");
        assert_eq!(written as usize, wire.len());
        let text = String::from_utf8(wire).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut chunked = Vec::new();
        let mut total =
            write_chunked_head(&mut chunked, 200, &[], "application/octet-stream").expect("head");
        total += write_chunk(&mut chunked, b"abc").expect("chunk");
        total += write_chunk(&mut chunked, b"").expect("empty chunk skipped");
        total += finish_chunks(&mut chunked).expect("terminator");
        assert_eq!(total as usize, chunked.len());
        let text = String::from_utf8(chunked).expect("ascii response");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("3\r\nabc\r\n0\r\n\r\n"));
    }

    #[test]
    fn head_budget_bounds_hostile_header_streams() {
        let mut wire = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        wire.resize(wire.len() + MAX_HEAD_BYTES, b'a');
        assert!(matches!(
            parse(&wire, 1024),
            ReadOutcome::Malformed(HttpError::HeadTooLarge)
        ));
    }
}
