//! The binary frame wire format and typed request decoding.
//!
//! ## Frame body (`POST /render`)
//!
//! Little-endian, length-implicit:
//!
//! ```text
//! u32 width · u32 height · width*height × (f32 r · f32 g · f32 b)
//! ```
//!
//! The pixel order is row-major, identical to
//! [`Framebuffer::pixels`], so the FNV-1a digest of a decoded frame
//! ([`frame_digest`]) is bit-identical to the digest of the in-process
//! render — the property the loopback e2e test and `load_gen` pin.
//!
//! ## Trajectory chunks (`POST /trajectories`)
//!
//! Each HTTP chunk carries exactly one frame, tagged:
//!
//! ```text
//! 0x01 · u8 tier · <frame body>          served frame
//! 0x00 · u32 len · len × u8 utf-8        per-frame refusal (Display text)
//! ```
//!
//! Frames arrive in submission order; a refused frame keeps its slot as
//! a tagged error chunk instead of silently vanishing.

use splat_core::Framebuffer;
use splat_engine::{QualityTier, SubmitRequest};
use splat_metrics::Fnv1a64;
use splat_scene::CameraTrajectory;
use splat_types::{Camera, CameraIntrinsics, Priority, RenderError, Rgb, SceneId, Vec3};

use crate::json::JsonValue;

/// FNV-1a 64 digest of a framebuffer: dimensions then row-major
/// `r, g, b` bit patterns — the workspace-wide canonical frame digest.
pub fn frame_digest(image: &Framebuffer) -> u64 {
    let mut hasher = Fnv1a64::new();
    hasher.write_u64(u64::from(image.width()));
    hasher.write_u64(u64::from(image.height()));
    for pixel in image.pixels() {
        hasher.write_f32(pixel.r);
        hasher.write_f32(pixel.g);
        hasher.write_f32(pixel.b);
    }
    hasher.finish()
}

/// Encodes a frame body (see the module docs for the layout).
pub fn encode_frame(image: &Framebuffer) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + image.pixels().len() * 12);
    out.extend_from_slice(&image.width().to_le_bytes());
    out.extend_from_slice(&image.height().to_le_bytes());
    for pixel in image.pixels() {
        out.extend_from_slice(&pixel.r.to_le_bytes());
        out.extend_from_slice(&pixel.g.to_le_bytes());
        out.extend_from_slice(&pixel.b.to_le_bytes());
    }
    out
}

/// A malformed frame or trajectory chunk (client-side decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared payload.
    Truncated,
    /// `width * height` disagrees with the pixel payload length.
    DimensionMismatch,
    /// An unknown chunk tag or tier byte.
    BadTag,
    /// A refusal chunk whose message is not UTF-8.
    BadRefusal,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire frame ended unexpectedly"),
            WireError::DimensionMismatch => {
                write!(f, "wire frame dimensions disagree with the pixel payload")
            }
            WireError::BadTag => write!(f, "unknown wire chunk tag"),
            WireError::BadRefusal => write!(f, "refusal chunk is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

fn le_u32(buf: &[u8], at: usize) -> Result<u32, WireError> {
    let bytes: [u8; 4] = buf
        .get(at..at + 4)
        .and_then(|chunk| chunk.try_into().ok())
        .ok_or(WireError::Truncated)?;
    Ok(u32::from_le_bytes(bytes))
}

fn le_f32(bytes: &[u8]) -> f32 {
    let array: [u8; 4] = bytes.try_into().unwrap_or_default();
    f32::from_le_bytes(array)
}

/// Decodes a frame body produced by [`encode_frame`].
pub fn decode_frame(buf: &[u8]) -> Result<Framebuffer, WireError> {
    let width = le_u32(buf, 0)?;
    let height = le_u32(buf, 4)?;
    let payload = buf.get(8..).ok_or(WireError::Truncated)?;
    let expected = (width as usize)
        .checked_mul(height as usize)
        .and_then(|pixels| pixels.checked_mul(12))
        .ok_or(WireError::DimensionMismatch)?;
    if payload.len() != expected {
        return Err(WireError::DimensionMismatch);
    }
    let pixels: Vec<Rgb> = payload
        .chunks_exact(12)
        .map(|chunk| {
            let (r, rest) = chunk.split_at(4);
            let (g, b) = rest.split_at(4);
            Rgb::new(le_f32(r), le_f32(g), le_f32(b))
        })
        .collect();
    let mut image = Framebuffer::black(width, height);
    if !pixels.is_empty() {
        image.write_region(0, 0, width, &pixels);
    }
    Ok(image)
}

fn tier_byte(tier: QualityTier) -> u8 {
    match tier {
        QualityTier::Full => 0,
        QualityTier::Tier1 => 1,
        QualityTier::Tier2 => 2,
        QualityTier::Tier3 => 3,
    }
}

fn tier_from_byte(byte: u8) -> Result<QualityTier, WireError> {
    match byte {
        0 => Ok(QualityTier::Full),
        1 => Ok(QualityTier::Tier1),
        2 => Ok(QualityTier::Tier2),
        3 => Ok(QualityTier::Tier3),
        _ => Err(WireError::BadTag),
    }
}

/// One decoded trajectory chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameChunk {
    /// A served frame and the quality tier it was admitted at.
    Frame {
        /// Admission tier recorded when the frame entered the queue.
        tier: QualityTier,
        /// The decoded framebuffer.
        image: Framebuffer,
    },
    /// A per-frame refusal carrying the engine error's `Display` text.
    Refusal(String),
}

/// Encodes a served frame as a trajectory chunk payload.
pub fn encode_frame_chunk(tier: QualityTier, image: &Framebuffer) -> Vec<u8> {
    let body = encode_frame(image);
    let mut out = Vec::with_capacity(2 + body.len());
    out.push(1u8);
    out.push(tier_byte(tier));
    out.extend_from_slice(&body);
    out
}

/// Encodes a per-frame refusal as a trajectory chunk payload.
pub fn encode_refusal_chunk(message: &str) -> Vec<u8> {
    let bytes = message.as_bytes();
    let mut out = Vec::with_capacity(5 + bytes.len());
    out.push(0u8);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decodes one trajectory chunk payload.
pub fn decode_frame_chunk(buf: &[u8]) -> Result<FrameChunk, WireError> {
    let (tag, rest) = buf.split_first().ok_or(WireError::Truncated)?;
    match tag {
        1 => {
            let (tier, body) = rest.split_first().ok_or(WireError::Truncated)?;
            Ok(FrameChunk::Frame {
                tier: tier_from_byte(*tier)?,
                image: decode_frame(body)?,
            })
        }
        0 => {
            let length = le_u32(rest, 0)? as usize;
            let message = rest.get(4..4 + length).ok_or(WireError::Truncated)?;
            let text = std::str::from_utf8(message).map_err(|_| WireError::BadRefusal)?;
            Ok(FrameChunk::Refusal(text.to_string()))
        }
        _ => Err(WireError::BadTag),
    }
}

/// A malformed request body: the field at fault plus what was expected.
/// `Display` is wire-facing (the 400 body).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but has the wrong type or domain.
    Invalid(&'static str),
    /// Field values parsed but fail render validation (degenerate
    /// camera, zero resolution, ...).
    Render(RenderError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Missing(field) => write!(f, "missing required field `{field}`"),
            RequestError::Invalid(field) => write!(f, "invalid value for field `{field}`"),
            RequestError::Render(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A decoded `POST /render` body, ready to submit.
#[derive(Debug, Clone)]
pub struct RenderWireRequest {
    /// The registered scene to render.
    pub scene_id: SceneId,
    /// The validated camera.
    pub camera: Camera,
    /// Admission priority (defaults to [`Priority::Normal`]).
    pub priority: Priority,
}

impl RenderWireRequest {
    /// Converts into an engine submission.
    pub fn into_submit(self) -> SubmitRequest {
        SubmitRequest::new(self.scene_id, self.camera).with_priority(self.priority)
    }
}

/// A decoded `POST /trajectories` body.
#[derive(Debug, Clone)]
pub struct TrajectoryWireRequest {
    /// The registered scene to render.
    pub scene_id: SceneId,
    /// The orbit trajectory described by the body.
    pub trajectory: CameraTrajectory,
    /// Admission priority (defaults to [`Priority::Normal`]).
    pub priority: Priority,
}

fn parse_vec3(value: Option<&JsonValue>, field: &'static str) -> Result<Vec3, RequestError> {
    let items = value
        .ok_or(RequestError::Missing(field))?
        .as_array()
        .ok_or(RequestError::Invalid(field))?;
    match items {
        [x, y, z] => {
            let x = x.as_f64().ok_or(RequestError::Invalid(field))?;
            let y = y.as_f64().ok_or(RequestError::Invalid(field))?;
            let z = z.as_f64().ok_or(RequestError::Invalid(field))?;
            Ok(Vec3::new(x as f32, y as f32, z as f32))
        }
        _ => Err(RequestError::Invalid(field)),
    }
}

fn parse_f32(value: Option<&JsonValue>, field: &'static str) -> Result<f32, RequestError> {
    value
        .ok_or(RequestError::Missing(field))?
        .as_f64()
        .map(|v| v as f32)
        .ok_or(RequestError::Invalid(field))
}

fn parse_u32(value: Option<&JsonValue>, field: &'static str) -> Result<u32, RequestError> {
    let raw = value
        .ok_or(RequestError::Missing(field))?
        .as_u64()
        .ok_or(RequestError::Invalid(field))?;
    u32::try_from(raw).map_err(|_| RequestError::Invalid(field))
}

fn parse_scene_id(body: &JsonValue) -> Result<SceneId, RequestError> {
    body.get("scene_id")
        .ok_or(RequestError::Missing("scene_id"))?
        .as_u64()
        .map(SceneId::from_raw)
        .ok_or(RequestError::Invalid("scene_id"))
}

fn parse_priority(body: &JsonValue) -> Result<Priority, RequestError> {
    match body.get("priority") {
        None => Ok(Priority::Normal),
        Some(value) => {
            let label = value.as_str().ok_or(RequestError::Invalid("priority"))?;
            Priority::ALL
                .iter()
                .copied()
                .find(|priority| priority.label() == label)
                .ok_or(RequestError::Invalid("priority"))
        }
    }
}

fn parse_camera(body: &JsonValue) -> Result<Camera, RequestError> {
    let camera = body.get("camera").ok_or(RequestError::Missing("camera"))?;
    let eye = parse_vec3(camera.get("eye"), "camera.eye")?;
    let target = parse_vec3(camera.get("target"), "camera.target")?;
    let up = match camera.get("up") {
        None => Vec3::Y,
        Some(_) => parse_vec3(camera.get("up"), "camera.up")?,
    };
    let fov_y = parse_f32(camera.get("fov_y"), "camera.fov_y")?;
    let width = parse_u32(camera.get("width"), "camera.width")?;
    let height = parse_u32(camera.get("height"), "camera.height")?;
    let intrinsics =
        CameraIntrinsics::try_from_fov_y(fov_y, width, height).map_err(RequestError::Render)?;
    Camera::try_look_at(eye, target, up, intrinsics).map_err(RequestError::Render)
}

/// Decodes a `POST /render` body:
///
/// ```json
/// {"scene_id": 1, "priority": "high",
///  "camera": {"eye": [x,y,z], "target": [x,y,z], "up": [x,y,z],
///             "fov_y": 0.8, "width": 640, "height": 480}}
/// ```
///
/// `priority` and `camera.up` are optional (`"normal"` / `+Y`).
pub fn parse_render_request(body: &JsonValue) -> Result<RenderWireRequest, RequestError> {
    Ok(RenderWireRequest {
        scene_id: parse_scene_id(body)?,
        camera: parse_camera(body)?,
        priority: parse_priority(body)?,
    })
}

/// Decodes a `POST /trajectories` body:
///
/// ```json
/// {"scene_id": 1, "priority": "low",
///  "trajectory": {"kind": "orbit", "center": [x,y,z], "radius": 4.0,
///                 "elevation": 1.5, "frames": 24,
///                 "fov_y": 0.8, "width": 640, "height": 480}}
/// ```
///
/// Only the `"orbit"` kind exists today; `frames` is clamped to at
/// least 1 by the trajectory builder.
pub fn parse_trajectory_request(body: &JsonValue) -> Result<TrajectoryWireRequest, RequestError> {
    let scene_id = parse_scene_id(body)?;
    let priority = parse_priority(body)?;
    let spec = body
        .get("trajectory")
        .ok_or(RequestError::Missing("trajectory"))?;
    let kind = spec
        .get("kind")
        .and_then(JsonValue::as_str)
        .unwrap_or("orbit");
    if kind != "orbit" {
        return Err(RequestError::Invalid("trajectory.kind"));
    }
    let center = parse_vec3(spec.get("center"), "trajectory.center")?;
    let radius = parse_f32(spec.get("radius"), "trajectory.radius")?;
    let elevation = parse_f32(spec.get("elevation"), "trajectory.elevation")?;
    let frames = spec
        .get("frames")
        .ok_or(RequestError::Missing("trajectory.frames"))?
        .as_u64()
        .and_then(|raw| usize::try_from(raw).ok())
        .filter(|&frames| frames >= 1)
        .ok_or(RequestError::Invalid("trajectory.frames"))?;
    let fov_y = parse_f32(spec.get("fov_y"), "trajectory.fov_y")?;
    let width = parse_u32(spec.get("width"), "trajectory.width")?;
    let height = parse_u32(spec.get("height"), "trajectory.height")?;
    let intrinsics =
        CameraIntrinsics::try_from_fov_y(fov_y, width, height).map_err(RequestError::Render)?;
    Ok(TrajectoryWireRequest {
        scene_id,
        trajectory: CameraTrajectory::orbit(intrinsics, center, radius, elevation, frames),
        priority,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn checker_frame() -> Framebuffer {
        let mut image = Framebuffer::black(3, 2);
        image.set_pixel(0, 0, Rgb::new(1.0, 0.25, -0.5));
        image.set_pixel(2, 1, Rgb::new(0.125, 2.0, 3.5));
        image
    }

    #[test]
    fn frame_round_trips_bit_exactly() {
        let image = checker_frame();
        let decoded = decode_frame(&encode_frame(&image)).expect("round trip");
        assert_eq!(decoded, image);
        assert_eq!(frame_digest(&decoded), frame_digest(&image));
    }

    #[test]
    fn frame_decode_rejects_truncation_and_dimension_lies() {
        let image = checker_frame();
        let wire = encode_frame(&image);
        assert_eq!(decode_frame(&wire[..6]), Err(WireError::Truncated));
        assert_eq!(
            decode_frame(&wire[..wire.len() - 4]),
            Err(WireError::DimensionMismatch)
        );
        let mut lying = Vec::from(&4u32.to_le_bytes()[..]);
        lying.extend_from_slice(&wire[4..]);
        assert_eq!(decode_frame(&lying), Err(WireError::DimensionMismatch));
    }

    #[test]
    fn trajectory_chunks_round_trip_frames_and_refusals() {
        let image = checker_frame();
        let chunk = encode_frame_chunk(QualityTier::Tier2, &image);
        assert_eq!(
            decode_frame_chunk(&chunk).expect("frame chunk"),
            FrameChunk::Frame {
                tier: QualityTier::Tier2,
                image,
            }
        );
        let refusal = encode_refusal_chunk("engine overloaded");
        assert_eq!(
            decode_frame_chunk(&refusal).expect("refusal chunk"),
            FrameChunk::Refusal("engine overloaded".to_string())
        );
        assert_eq!(decode_frame_chunk(&[7u8]), Err(WireError::BadTag));
        assert_eq!(decode_frame_chunk(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn render_request_parses_with_defaults_and_validates_cameras() {
        let body = parse_json(
            r#"{"scene_id": 5,
                "camera": {"eye": [0.0, 1.0, -4.0], "target": [0.0, 0.0, 0.0],
                           "fov_y": 0.8, "width": 64, "height": 48}}"#,
        )
        .expect("valid json");
        let request = parse_render_request(&body).expect("valid request");
        assert_eq!(request.scene_id, SceneId::from_raw(5));
        assert_eq!(request.priority, Priority::Normal);
        assert_eq!(request.camera.width(), 64);

        let degenerate = parse_json(
            r#"{"scene_id": 5,
                "camera": {"eye": [0.0, 0.0, 0.0], "target": [0.0, 0.0, 0.0],
                           "fov_y": 0.8, "width": 64, "height": 48}}"#,
        )
        .expect("valid json");
        assert!(matches!(
            parse_render_request(&degenerate),
            Err(RequestError::Render(RenderError::DegenerateCamera { .. }))
        ));

        let missing = parse_json(r#"{"camera": {}}"#).expect("valid json");
        assert!(matches!(
            parse_render_request(&missing),
            Err(RequestError::Missing("scene_id"))
        ));
    }

    #[test]
    fn trajectory_request_builds_the_documented_orbit() {
        let body = parse_json(
            r#"{"scene_id": 2, "priority": "low",
                "trajectory": {"center": [0.0, 0.0, 0.0], "radius": 4.0,
                               "elevation": 1.5, "frames": 6,
                               "fov_y": 0.8, "width": 32, "height": 24}}"#,
        )
        .expect("valid json");
        let request = parse_trajectory_request(&body).expect("valid request");
        assert_eq!(request.trajectory.len(), 6);
        assert_eq!(request.priority, Priority::Low);
        let intrinsics = CameraIntrinsics::try_from_fov_y(0.8, 32, 24).expect("intrinsics");
        let direct = CameraTrajectory::orbit(intrinsics, Vec3::ZERO, 4.0, 1.5, 6);
        assert_eq!(
            request.trajectory.cameras().count(),
            direct.cameras().count()
        );

        let zero_frames = parse_json(
            r#"{"scene_id": 2,
                "trajectory": {"center": [0.0, 0.0, 0.0], "radius": 4.0,
                               "elevation": 1.5, "frames": 0,
                               "fov_y": 0.8, "width": 32, "height": 24}}"#,
        )
        .expect("valid json");
        assert!(matches!(
            parse_trajectory_request(&zero_frames),
            Err(RequestError::Invalid("trajectory.frames"))
        ));
    }
}
