//! A minimal blocking HTTP/1.1 client for the front door.
//!
//! Shared by the `load_gen` bench, the loopback e2e tests and the CI
//! smoke run so they all speak the exact wire dialect the server
//! emits — `Content-Length` responses and chunked trajectory streams.
//! Failures surface as `io::Error` (`InvalidData` for framing
//! violations); the client never panics on hostile bytes.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One complete (non-streaming) response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lowercased-name, value)` header pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The response body (chunked bodies are reassembled).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of the named header (name compared lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }
}

/// A keep-alive connection to a `splat-serve` instance.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
}

fn invalid(message: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

impl Connection {
    /// Opens a connection with the given read timeout.
    pub fn open(addr: &str, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    fn stream(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// Sends a request head and body. The body is framed with
    /// `Content-Length`; pass `&[]` for body-less requests.
    pub fn send_request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: splat-serve\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        let stream = self.stream();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()
    }

    /// Sends only the head and the first `partial` bytes of a body that
    /// claims `declared` bytes, then stops — used to exercise the
    /// server's truncated-body handling.
    pub fn send_truncated_request(
        &mut self,
        method: &str,
        path: &str,
        declared: usize,
        partial: &[u8],
    ) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: splat-serve\r\nContent-Length: {declared}\r\n\r\n",
        );
        let stream = self.stream();
        stream.write_all(head.as_bytes())?;
        stream.write_all(partial)?;
        stream.flush()?;
        // Half-close the write side so the server sees EOF, not a stall.
        stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads a status line and headers, leaving the body unread.
    pub fn read_response_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
        let status_line = read_line(&mut self.reader)?;
        let mut parts = status_line.split_ascii_whitespace();
        let status = match (parts.next(), parts.next()) {
            (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
                .parse::<u16>()
                .map_err(|_| invalid("malformed status code"))?,
            _ => return Err(invalid("malformed status line")),
        };
        let mut headers = Vec::new();
        loop {
            let line = read_line(&mut self.reader)?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid("malformed header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        Ok((status, headers))
    }

    fn content_length(headers: &[(String, String)]) -> io::Result<Option<usize>> {
        let Some((_, value)) = headers.iter().find(|(name, _)| name == "content-length") else {
            return Ok(None);
        };
        value
            .parse::<usize>()
            .map(Some)
            .map_err(|_| invalid("malformed Content-Length"))
    }

    fn is_chunked(headers: &[(String, String)]) -> bool {
        headers
            .iter()
            .any(|(name, value)| name == "transfer-encoding" && value.contains("chunked"))
    }

    /// Reads one chunk of a chunked body; `Ok(None)` at the terminal
    /// chunk (trailing CRLF consumed).
    pub fn read_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        let size_line = read_line(&mut self.reader)?;
        let size_text = size_line.split(';').next().unwrap_or("").trim();
        let size =
            usize::from_str_radix(size_text, 16).map_err(|_| invalid("malformed chunk size"))?;
        if size == 0 {
            // Consume the trailer terminator (no trailers are sent).
            let trailer = read_line(&mut self.reader)?;
            if !trailer.is_empty() {
                let _ = read_line(&mut self.reader)?;
            }
            return Ok(None);
        }
        let mut chunk = vec![0u8; size];
        self.reader.read_exact(&mut chunk)?;
        let mut crlf = [0u8; 2];
        self.reader.read_exact(&mut crlf)?;
        if crlf != *b"\r\n" {
            return Err(invalid("chunk missing CRLF terminator"));
        }
        Ok(Some(chunk))
    }

    fn read_body(&mut self, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
        if Self::is_chunked(headers) {
            let mut body = Vec::new();
            while let Some(chunk) = self.read_chunk()? {
                body.extend_from_slice(&chunk);
            }
            return Ok(body);
        }
        let length = Self::content_length(headers)?.unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(body)
    }

    /// One full request/response exchange (chunked bodies reassembled).
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.send_request(method, path, body)?;
        self.read_response()
    }

    /// Reads a complete response (head plus body).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let (status, headers) = self.read_response_head()?;
        let body = self.read_body(&headers)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// Convenience: one exchange over a fresh connection.
pub fn one_shot(
    addr: &str,
    read_timeout: Duration,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    Connection::open(addr, read_timeout)?.request(method, path, body)
}
