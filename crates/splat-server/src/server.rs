//! The listener, connection pool and router.
//!
//! ## Threading model
//!
//! One acceptor thread polls a non-blocking `TcpListener` and pushes
//! accepted sockets into a bounded queue; when the queue is full the
//! connection is refused with an immediate `503` — backpressure at the
//! door, before a single request byte is read. A fixed pool of worker
//! threads pops connections and serves them keep-alive until the peer
//! closes, a request is malformed beyond recovery, or shutdown begins.
//!
//! ## Backpressure-to-status mapping
//!
//! | engine refusal                  | wire                         |
//! |---------------------------------|------------------------------|
//! | `Overloaded` / `ShutDown`       | `503` + `Retry-After: 1`     |
//! | `UnknownScene`                  | `404`                        |
//! | `Evicted`                       | `410`                        |
//! | malformed body / camera         | `400` (typed `Display` text) |
//! | oversized `Content-Length`      | `413` (body never read)      |
//!
//! Trajectory streams additionally bound the per-connection in-flight
//! window ([`ServerConfig::stream_window`]): frames are submitted
//! lazily as chunks drain to the peer, so a slow reader holds at most
//! `window` queue slots instead of pinning a whole trajectory.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use splat_engine::{Engine, EngineStats, ShutdownMode};
use splat_scene::io::decode_scene;
use splat_types::RenderError;

use crate::http::{
    finish_chunks, read_request, status_for_http_error, write_chunk, write_chunked_head,
    write_response, ReadOutcome, Request,
};
use crate::json::parse_json;
use crate::stats::{ServerCounters, ServerStats};
use crate::wire::{
    encode_frame, encode_frame_chunk, encode_refusal_chunk, frame_digest, parse_render_request,
    parse_trajectory_request, RequestError,
};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound
    /// address is available from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads serving connections (clamped to at least 1).
    pub workers: usize,
    /// Connections queued between acceptor and workers before the
    /// door refuses with `503` (clamped to at least 1).
    pub pending_connections: usize,
    /// Largest accepted request body, in bytes; larger declared
    /// `Content-Length`s are refused with `413` without reading.
    pub max_body_bytes: usize,
    /// Per-connection in-flight window for trajectory streams
    /// (clamped to at least 1).
    pub stream_window: usize,
    /// Socket read timeout; a peer stalling longer mid-request gets a
    /// `400`, and an idle keep-alive connection is closed.
    pub read_timeout_ms: u64,
    /// How long [`Server::shutdown`] waits for the engine to drain
    /// admitted jobs before aborting the remainder.
    pub drain_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            pending_connections: 64,
            max_body_bytes: 64 << 20,
            stream_window: 4,
            read_timeout_ms: 5_000,
            drain_deadline_ms: 5_000,
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the connection-queue bound.
    pub fn with_pending_connections(mut self, pending: usize) -> Self {
        self.pending_connections = pending;
        self
    }

    /// Sets the request-body limit in bytes.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the trajectory-stream in-flight window.
    pub fn with_stream_window(mut self, window: usize) -> Self {
        self.stream_window = window;
        self
    }

    /// Sets the socket read timeout in milliseconds.
    pub fn with_read_timeout_ms(mut self, millis: u64) -> Self {
        self.read_timeout_ms = millis;
        self
    }

    /// Sets the shutdown drain deadline in milliseconds.
    pub fn with_drain_deadline_ms(mut self, millis: u64) -> Self {
        self.drain_deadline_ms = millis;
        self
    }
}

struct ServerShared {
    engine: Arc<Engine>,
    counters: ServerCounters,
    pending: Mutex<std::collections::VecDeque<TcpStream>>,
    pending_ready: Condvar,
    stop: AtomicBool,
    max_body_bytes: usize,
    stream_window: usize,
    read_timeout: Duration,
}

impl ServerShared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// The running front door: a bound listener, an acceptor thread and a
/// worker pool fronting a shared [`Engine`].
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown))
/// stops accepting, drains queued connections, and asks the engine to
/// drain via [`Engine::begin_shutdown`] — the sanctioned
/// shared-ownership path, since the server holds the engine in an
/// `Arc` and cannot call the consuming `Engine::shutdown`.
pub struct Server {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
    drain_deadline: Duration,
}

impl Server {
    /// Binds the listener and starts the acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidConfiguration`] when the address
    /// cannot be bound or threads cannot be spawned.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> Result<Self, RenderError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|error| RenderError::InvalidConfiguration {
                reason: format!("failed to bind {}: {error}", config.addr),
            })?;
        listener
            .set_nonblocking(true)
            .map_err(|error| RenderError::InvalidConfiguration {
                reason: format!("failed to set the listener non-blocking: {error}"),
            })?;
        let addr = listener
            .local_addr()
            .map_err(|error| RenderError::InvalidConfiguration {
                reason: format!("failed to read the bound address: {error}"),
            })?;

        let shared = Arc::new(ServerShared {
            engine,
            counters: ServerCounters::default(),
            pending: Mutex::new(std::collections::VecDeque::new()),
            pending_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
            stream_window: config.stream_window.max(1),
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
        });

        let pending_limit = config.pending_connections.max(1);
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("splat-serve-acceptor".to_string())
            .spawn(move || accept_loop(&acceptor_shared, &listener, pending_limit))
            .map_err(|error| RenderError::InvalidConfiguration {
                reason: format!("failed to spawn the acceptor thread: {error}"),
            })?;

        let mut workers = Vec::new();
        for index in 0..config.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("splat-serve-worker-{index}"))
                .spawn(move || worker_loop(&worker_shared))
                .map_err(|error| RenderError::InvalidConfiguration {
                    reason: format!("failed to spawn worker {index}: {error}"),
                })?;
            workers.push(handle);
        }

        Ok(Self {
            shared,
            acceptor: Some(acceptor),
            workers,
            addr,
            drain_deadline: Duration::from_millis(config.drain_deadline_ms),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the front door.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// A point-in-time snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// Signals shutdown without blocking: the acceptor stops taking
    /// new connections, workers finish the connections already
    /// accepted, and `POST /shutdown` responses flip to refusals.
    /// Idempotent; also triggered remotely by `POST /shutdown`.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.pending_ready.notify_all();
    }

    /// Whether shutdown has been requested (locally or via
    /// `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stopping()
    }

    /// Blocks until shutdown is requested, polling the stop flag (used
    /// by the `splat-serve` binary between startup and teardown).
    pub fn wait_until_shutdown(&self) {
        while !self.shared.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Graceful teardown: stops the acceptor, joins the workers (each
    /// finishes its current connection), then drains the engine via
    /// [`Engine::begin_shutdown`] with the configured deadline —
    /// aborting the remainder if the deadline passes. Returns the
    /// final server and engine snapshots for reconciliation.
    pub fn shutdown(mut self) -> (ServerStats, EngineStats) {
        self.join_front_door();
        let deadline = self.drain_deadline;
        let shared = Arc::clone(&self.shared);
        shared.engine.begin_shutdown(ShutdownMode::Drain);
        let started = Instant::now();
        while shared.engine.stats().in_flight() > 0 {
            if started.elapsed() >= deadline {
                shared.engine.begin_shutdown(ShutdownMode::Abort);
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        (shared.counters.snapshot(), shared.engine.stats())
    }

    fn join_front_door(&mut self) {
        self.request_shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_front_door();
    }
}

fn accept_loop(shared: &ServerShared, listener: &TcpListener, pending_limit: usize) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let admitted = {
                    let Ok(mut pending) = shared.pending.lock() else {
                        return;
                    };
                    if pending.len() < pending_limit {
                        pending.push_back(stream);
                        true
                    } else {
                        drop(pending);
                        refuse_connection(shared, stream);
                        false
                    }
                };
                if admitted {
                    ServerCounters::bump(&shared.counters.accepted);
                    shared.pending_ready.notify_one();
                }
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    shared.pending_ready.notify_all();
}

/// Writes the at-the-door `503` for a connection the queue cannot hold.
fn refuse_connection(shared: &ServerShared, mut stream: TcpStream) {
    ServerCounters::bump(&shared.counters.refused_connections);
    let retry = [("Retry-After", "1".to_string())];
    if let Ok(written) = write_response(
        &mut stream,
        503,
        &retry,
        "application/json",
        b"{\"error\":\"connection queue full\"}",
    ) {
        ServerCounters::add(&shared.counters.bytes_out, written);
    }
}

fn worker_loop(shared: &ServerShared) {
    loop {
        let stream = {
            let Ok(mut pending) = shared.pending.lock() else {
                return;
            };
            loop {
                if let Some(stream) = pending.pop_front() {
                    break stream;
                }
                if shared.stopping() {
                    return;
                }
                let Ok(next) = shared.pending_ready.wait(pending) else {
                    return;
                };
                pending = next;
            }
        };
        ServerCounters::bump(&shared.counters.active_connections);
        let _ = serve_connection(shared, stream);
        shared.counters.release_connection();
    }
}

fn serve_connection(shared: &ServerShared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.read_timeout))?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, shared.max_body_bytes)? {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(error) => {
                // The refusal is itself a served response: count it as a
                // parsed-but-rejected request so the status identity holds.
                ServerCounters::bump(&shared.counters.requests);
                ServerCounters::bump(&shared.counters.unrouted_requests);
                let status = status_for_http_error(&error);
                shared.counters.record_status(status);
                let body = format!("{{\"error\":\"{error}\"}}");
                let written = write_response(
                    reader.get_mut(),
                    status,
                    &[],
                    "application/json",
                    body.as_bytes(),
                )?;
                ServerCounters::add(&shared.counters.bytes_out, written);
                // Framing is unreliable after a malformed request; close.
                return Ok(());
            }
            ReadOutcome::Request {
                request,
                head_bytes,
            } => {
                ServerCounters::bump(&shared.counters.requests);
                ServerCounters::add(
                    &shared.counters.bytes_in,
                    head_bytes as u64 + request.body.len() as u64,
                );
                handle_request(shared, reader.get_mut(), &request)?;
                if shared.stopping() {
                    return Ok(());
                }
            }
        }
    }
}

/// Maps an engine refusal to its wire status.
fn status_for_render_error(error: &RenderError) -> u16 {
    match error {
        RenderError::Overloaded { .. } | RenderError::ShutDown => 503,
        RenderError::UnknownScene { .. } => 404,
        RenderError::Evicted { .. } => 410,
        _ => 400,
    }
}

fn error_body(message: &str) -> Vec<u8> {
    let escaped: String = message
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    format!("{{\"error\":\"{escaped}\"}}").into_bytes()
}

fn retry_after_headers(status: u16) -> Vec<(&'static str, String)> {
    if status == 503 {
        vec![("Retry-After", "1".to_string())]
    } else {
        Vec::new()
    }
}

fn respond(
    shared: &ServerShared,
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    shared.counters.record_status(status);
    let written = write_response(stream, status, extra_headers, content_type, body)?;
    ServerCounters::add(&shared.counters.bytes_out, written);
    Ok(())
}

fn respond_render_error(
    shared: &ServerShared,
    stream: &mut TcpStream,
    error: &RenderError,
) -> io::Result<()> {
    let status = status_for_render_error(error);
    let headers = retry_after_headers(status);
    respond(
        shared,
        stream,
        status,
        &headers,
        "application/json",
        &error_body(&error.to_string()),
    )
}

fn handle_request(
    shared: &ServerShared,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            ServerCounters::bump(&shared.counters.health_requests);
            respond(shared, stream, 200, &[], "text/plain", b"ok\n")
        }
        ("GET", "/stats") => {
            ServerCounters::bump(&shared.counters.stats_requests);
            let engine_json = shared.engine.stats().to_json();
            // Count this response before snapshotting so the served
            // JSON satisfies the status identity for its own request.
            shared.counters.record_status(200);
            let server_json = shared.counters.snapshot().to_json();
            let body = format!("{{\"server\":{server_json},\"engine\":{engine_json}}}");
            let written = write_response(stream, 200, &[], "application/json", body.as_bytes())?;
            ServerCounters::add(&shared.counters.bytes_out, written);
            Ok(())
        }
        ("POST", "/scenes") => {
            ServerCounters::bump(&shared.counters.scenes_requests);
            handle_scene_upload(shared, stream, request)
        }
        ("POST", "/render") => {
            ServerCounters::bump(&shared.counters.render_requests);
            handle_render(shared, stream, request)
        }
        ("POST", "/trajectories") => {
            ServerCounters::bump(&shared.counters.trajectory_requests);
            handle_trajectory(shared, stream, request)
        }
        ("POST", "/shutdown") => {
            ServerCounters::bump(&shared.counters.shutdown_requests);
            shared.stop.store(true, Ordering::Release);
            shared.pending_ready.notify_all();
            respond(
                shared,
                stream,
                200,
                &[],
                "application/json",
                b"{\"shutting_down\":true}",
            )
        }
        _ => {
            ServerCounters::bump(&shared.counters.unrouted_requests);
            respond(
                shared,
                stream,
                404,
                &[],
                "application/json",
                b"{\"error\":\"no such endpoint\"}",
            )
        }
    }
}

fn handle_scene_upload(
    shared: &ServerShared,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let scene = match decode_scene(&request.body) {
        Ok(scene) => scene,
        Err(error) => {
            return respond(
                shared,
                stream,
                400,
                &[],
                "application/json",
                &error_body(&error.to_string()),
            );
        }
    };
    let name = scene.name().to_string();
    let splats = scene.len();
    match shared.engine.register_scene(Arc::new(scene)) {
        Ok(id) => {
            let body = format!(
                "{{\"scene_id\":{},\"name\":\"{name}\",\"splats\":{splats}}}",
                id.raw(),
            );
            respond(
                shared,
                stream,
                201,
                &[],
                "application/json",
                body.as_bytes(),
            )
        }
        Err(error) => respond_render_error(shared, stream, &error),
    }
}

fn parse_body_json(request: &Request) -> Result<crate::json::JsonValue, String> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| "request body is not valid UTF-8".to_string())?;
    parse_json(text).map_err(|error| error.to_string())
}

fn status_for_request_error(error: &RequestError) -> u16 {
    match error {
        RequestError::Render(render) => status_for_render_error(render),
        _ => 400,
    }
}

fn handle_render(
    shared: &ServerShared,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let body = match parse_body_json(request) {
        Ok(body) => body,
        Err(message) => {
            return respond(
                shared,
                stream,
                400,
                &[],
                "application/json",
                &error_body(&message),
            );
        }
    };
    let wire_request = match parse_render_request(&body) {
        Ok(parsed) => parsed,
        Err(error) => {
            let status = status_for_request_error(&error);
            let headers = retry_after_headers(status);
            return respond(
                shared,
                stream,
                status,
                &headers,
                "application/json",
                &error_body(&error.to_string()),
            );
        }
    };
    let handle = match shared.engine.submit(wire_request.into_submit()) {
        Ok(handle) => handle,
        Err(error) => return respond_render_error(shared, stream, &error),
    };
    let tier = handle.tier();
    match handle.wait() {
        Ok(output) => {
            let body = encode_frame(&output.image);
            let headers = [
                (
                    "X-Splat-Digest",
                    format!("{:016x}", frame_digest(&output.image)),
                ),
                ("X-Splat-Quality", tier.label().to_string()),
            ];
            respond(
                shared,
                stream,
                200,
                &headers,
                "application/octet-stream",
                &body,
            )
        }
        Err(error) => respond_render_error(shared, stream, &error),
    }
}

fn handle_trajectory(
    shared: &ServerShared,
    stream: &mut TcpStream,
    request: &Request,
) -> io::Result<()> {
    let body = match parse_body_json(request) {
        Ok(body) => body,
        Err(message) => {
            return respond(
                shared,
                stream,
                400,
                &[],
                "application/json",
                &error_body(&message),
            );
        }
    };
    let wire_request = match parse_trajectory_request(&body) {
        Ok(parsed) => parsed,
        Err(error) => {
            let status = status_for_request_error(&error);
            let headers = retry_after_headers(status);
            return respond(
                shared,
                stream,
                status,
                &headers,
                "application/json",
                &error_body(&error.to_string()),
            );
        }
    };
    let mut frames = match shared.engine.stream_trajectory(
        wire_request.scene_id,
        &wire_request.trajectory,
        wire_request.priority,
        shared.stream_window,
    ) {
        Ok(stream) => stream,
        Err(error) => return respond_render_error(shared, stream, &error),
    };

    shared.counters.record_status(200);
    let headers = [("X-Splat-Frames", frames.len().to_string())];
    let mut written = write_chunked_head(stream, 200, &headers, "application/octet-stream")?;
    while let Some((tier, result)) = frames.next_frame_tiered() {
        let chunk = match (tier, result) {
            (Some(tier), Ok(output)) => {
                ServerCounters::bump(&shared.counters.frames_streamed);
                encode_frame_chunk(tier, &output.image)
            }
            (_, Ok(output)) => {
                // A served frame always carries its admission tier; keep
                // the stream well-formed even if that invariant slips.
                ServerCounters::bump(&shared.counters.frames_streamed);
                encode_frame_chunk(splat_engine::QualityTier::Full, &output.image)
            }
            (_, Err(error)) => encode_refusal_chunk(&error.to_string()),
        };
        written += write_chunk(stream, &chunk)?;
        if shared.stopping() {
            // Shutdown mid-stream: stop submitting new frames; the
            // truncated chunk stream tells the peer the transfer died.
            break;
        }
    }
    written += finish_chunks(stream)?;
    ServerCounters::add(&shared.counters.bytes_out, written);
    Ok(())
}
