//! `splat-serve`: the network front door as a process.
//!
//! ```text
//! splat-serve [--addr 127.0.0.1:8090] [--workers 4] [--engine-workers 2]
//!             [--queue-capacity 256] [--admission reject|block|shed]
//!             [--quality degrade|full|t1|t2|t3]
//!             [--pending-connections 64] [--stream-window 4]
//!             [--read-timeout-ms 5000] [--drain-deadline-ms 5000]
//! ```
//!
//! Prints one JSON line `{"listening":"<addr>"}` once the socket is
//! bound, serves until `POST /shutdown` arrives, then prints the final
//! `{"server":…,"engine":…}` counter snapshots and exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use splat_engine::{AdmissionPolicy, Engine, QualityPolicy, QualityTier};
use splat_server::{Server, ServerConfig};

struct Args {
    config: ServerConfig,
    engine_workers: usize,
    queue_capacity: usize,
    admission: AdmissionPolicy,
    quality: QualityPolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServerConfig::default().with_addr("127.0.0.1:8090"),
        engine_workers: 2,
        queue_capacity: splat_engine::DEFAULT_QUEUE_CAPACITY,
        admission: AdmissionPolicy::RejectWhenFull,
        quality: QualityPolicy::degrade_default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.config.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = parse_number(&value("--workers")?, "--workers")?;
            }
            "--engine-workers" => {
                args.engine_workers =
                    parse_number(&value("--engine-workers")?, "--engine-workers")?;
            }
            "--queue-capacity" => {
                args.queue_capacity =
                    parse_number(&value("--queue-capacity")?, "--queue-capacity")?;
            }
            "--pending-connections" => {
                args.config.pending_connections =
                    parse_number(&value("--pending-connections")?, "--pending-connections")?;
            }
            "--stream-window" => {
                args.config.stream_window =
                    parse_number(&value("--stream-window")?, "--stream-window")?;
            }
            "--read-timeout-ms" => {
                args.config.read_timeout_ms =
                    parse_number(&value("--read-timeout-ms")?, "--read-timeout-ms")?;
            }
            "--drain-deadline-ms" => {
                args.config.drain_deadline_ms =
                    parse_number(&value("--drain-deadline-ms")?, "--drain-deadline-ms")?;
            }
            "--admission" => {
                args.admission = match value("--admission")?.as_str() {
                    "reject" => AdmissionPolicy::RejectWhenFull,
                    "block" => AdmissionPolicy::Block,
                    "shed" => AdmissionPolicy::ShedLowPriority {
                        capacity: args.queue_capacity,
                    },
                    other => return Err(format!("unknown admission policy `{other}`")),
                };
            }
            "--quality" => {
                let label = value("--quality")?;
                args.quality = match label.as_str() {
                    "degrade" => QualityPolicy::degrade_default(),
                    "full" => QualityPolicy::FullOnly,
                    other => QualityTier::from_label(other)
                        .map(QualityPolicy::Pinned)
                        .ok_or_else(|| format!("unknown quality policy `{other}`"))?,
                };
            }
            "--help" | "-h" => {
                return Err("usage: splat-serve [--addr HOST:PORT] [--workers N] \
                            [--engine-workers N] [--queue-capacity N] \
                            [--admission reject|block|shed] \
                            [--quality degrade|full|t1|t2|t3] \
                            [--pending-connections N] [--stream-window N] \
                            [--read-timeout-ms N] [--drain-deadline-ms N]"
                    .to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid value `{text}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let engine = match Engine::builder()
        .workers(args.engine_workers)
        .queue_capacity(args.queue_capacity)
        .admission(args.admission)
        .quality(args.quality)
        .build()
    {
        Ok(engine) => Arc::new(engine),
        Err(error) => {
            eprintln!("failed to build the engine: {error}");
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::start(engine, args.config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("failed to start the server: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("{{\"listening\":\"{}\"}}", server.local_addr());
    // The parent (CI smoke, load_gen recipes) parses the line above to
    // find the port; make sure it is not stuck in a pipe buffer.
    let _ = std::io::Write::flush(&mut std::io::stdout());

    server.wait_until_shutdown();
    let (server_stats, engine_stats) = server.shutdown();
    println!(
        "{{\"server\":{},\"engine\":{}}}",
        server_stats.to_json(),
        engine_stats.to_json(),
    );
    ExitCode::SUCCESS
}
