//! Observable server-side counters.
//!
//! [`ServerStats`] is the wire-facing sibling of
//! [`EngineStats`](splat_engine::EngineStats): where the engine counts
//! jobs, the server counts connections, requests and bytes. Both are
//! served together by `GET /stats` so an operator (or the `load_gen`
//! reconciliation pass) can check the cross-layer identities without
//! scraping two processes.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of the server's counters, taken with
/// [`Server::stats`](crate::Server::stats).
///
/// Counters are cumulative over the server's lifetime;
/// `active_connections` is an instantaneous gauge. Two bookkeeping
/// identities hold at every snapshot where no request is mid-dispatch:
///
/// * **Routing:** `requests == scenes_requests + render_requests +
///   trajectory_requests + stats_requests + health_requests +
///   shutdown_requests + unrouted_requests` — every parsed request is
///   routed exactly once.
/// * **Status:** `requests == ok + bad_request + not_found + gone +
///   payload_too_large + overloaded` — every parsed request produces
///   exactly one response status. Connections refused at the door
///   (`refused_connections`) never became requests and appear in
///   neither sum.
///
/// Reconciliation against the engine: single-frame renders flow
/// `render_requests → Engine submissions`, so at quiescence
/// `ok + overloaded + not_found + gone` responses on `/render` account
/// for every `submitted`/`rejected`/miss the engine recorded for that
/// traffic (pinned exactly in `tests/server_e2e.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ServerStats {
    /// Connections accepted into the bounded connection queue.
    pub accepted: u64,
    /// Connections turned away at the door with an immediate `503`
    /// because the connection queue was full — backpressure before a
    /// single request byte is parsed.
    pub refused_connections: u64,
    /// Connections currently being served by a worker.
    pub active_connections: usize,
    /// Requests successfully parsed from the wire (any route).
    pub requests: u64,
    /// Requests routed to `POST /scenes`.
    pub scenes_requests: u64,
    /// Requests routed to `POST /render`.
    pub render_requests: u64,
    /// Requests routed to `POST /trajectories`.
    pub trajectory_requests: u64,
    /// Requests routed to `GET /stats`.
    pub stats_requests: u64,
    /// Requests routed to `GET /healthz`.
    pub health_requests: u64,
    /// Requests routed to `POST /shutdown`.
    pub shutdown_requests: u64,
    /// Requests whose method/path matched no route (`404`).
    pub unrouted_requests: u64,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// `400` responses: malformed HTTP framing, malformed JSON or scene
    /// bytes, or invalid camera/trajectory parameters.
    pub bad_request: u64,
    /// `404` responses: unknown routes and `RenderError::UnknownScene`.
    pub not_found: u64,
    /// `410` responses: `RenderError::Evicted` — the scene existed but
    /// was deflated by the residency policy.
    pub gone: u64,
    /// `413` responses: declared `Content-Length` above the configured
    /// body limit (the body is never read).
    pub payload_too_large: u64,
    /// `503` responses: `RenderError::Overloaded` / `ShutDown` mapped
    /// to the wire with `Retry-After`.
    pub overloaded: u64,
    /// Frames delivered through chunked trajectory streams (refusal
    /// chunks not included).
    pub frames_streamed: u64,
    /// Request bytes read from the wire (request line, headers, body).
    pub bytes_in: u64,
    /// Response bytes written to the wire (status line, headers, body,
    /// chunk framing).
    pub bytes_out: u64,
}

impl ServerStats {
    /// Sum of the per-endpoint routing counters; equals `requests` at
    /// quiescence.
    pub fn routed(&self) -> u64 {
        self.scenes_requests
            + self.render_requests
            + self.trajectory_requests
            + self.stats_requests
            + self.health_requests
            + self.shutdown_requests
            + self.unrouted_requests
    }

    /// Sum of the per-status response counters; equals `requests` at
    /// quiescence.
    pub fn responded(&self) -> u64 {
        self.ok
            + self.bad_request
            + self.not_found
            + self.gone
            + self.payload_too_large
            + self.overloaded
    }

    /// One machine-readable JSON object (served by `GET /stats` and
    /// consumed by `load_gen --json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"refused_connections\":{},\"active_connections\":{},\
             \"requests\":{},\"scenes_requests\":{},\"render_requests\":{},\
             \"trajectory_requests\":{},\"stats_requests\":{},\"health_requests\":{},\
             \"shutdown_requests\":{},\"unrouted_requests\":{},\
             \"ok\":{},\"bad_request\":{},\"not_found\":{},\"gone\":{},\
             \"payload_too_large\":{},\"overloaded\":{},\
             \"frames_streamed\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
            self.accepted,
            self.refused_connections,
            self.active_connections,
            self.requests,
            self.scenes_requests,
            self.render_requests,
            self.trajectory_requests,
            self.stats_requests,
            self.health_requests,
            self.shutdown_requests,
            self.unrouted_requests,
            self.ok,
            self.bad_request,
            self.not_found,
            self.gone,
            self.payload_too_large,
            self.overloaded,
            self.frames_streamed,
            self.bytes_in,
            self.bytes_out,
        )
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "connections {} accepted, {} refused_connections, {} active_connections / \
             requests {} ({} scenes_requests, {} render_requests, {} trajectory_requests, \
             {} stats_requests, {} health_requests, {} shutdown_requests, \
             {} unrouted_requests) / status {} ok, {} bad_request, {} not_found, {} gone, \
             {} payload_too_large, {} overloaded / {} frames_streamed / \
             {} bytes_in, {} bytes_out",
            self.accepted,
            self.refused_connections,
            self.active_connections,
            self.requests,
            self.scenes_requests,
            self.render_requests,
            self.trajectory_requests,
            self.stats_requests,
            self.health_requests,
            self.shutdown_requests,
            self.unrouted_requests,
            self.ok,
            self.bad_request,
            self.not_found,
            self.gone,
            self.payload_too_large,
            self.overloaded,
            self.frames_streamed,
            self.bytes_in,
            self.bytes_out,
        )
    }
}

/// Lock-free accumulator behind [`ServerStats`]: every worker thread
/// bumps these atomics as it serves; [`snapshot`](Self::snapshot) reads
/// them into the plain snapshot struct. Relaxed ordering is sufficient
/// because the counters are monotonic tallies, not synchronization —
/// reconciliation tests quiesce the server before comparing.
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) refused_connections: AtomicU64,
    pub(crate) active_connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) scenes_requests: AtomicU64,
    pub(crate) render_requests: AtomicU64,
    pub(crate) trajectory_requests: AtomicU64,
    pub(crate) stats_requests: AtomicU64,
    pub(crate) health_requests: AtomicU64,
    pub(crate) shutdown_requests: AtomicU64,
    pub(crate) unrouted_requests: AtomicU64,
    pub(crate) ok: AtomicU64,
    pub(crate) bad_request: AtomicU64,
    pub(crate) not_found: AtomicU64,
    pub(crate) gone: AtomicU64,
    pub(crate) payload_too_large: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) frames_streamed: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
}

impl ServerCounters {
    pub(crate) fn add(counter: &AtomicU64, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// Decrements the active-connection gauge (saturating, so a spurious
    /// double-release cannot wrap the gauge).
    pub(crate) fn release_connection(&self) {
        let _ = self
            .active_connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Tallies one response by its status code.
    pub(crate) fn record_status(&self, status: u16) {
        match status {
            200..=299 => Self::bump(&self.ok),
            404 => Self::bump(&self.not_found),
            410 => Self::bump(&self.gone),
            413 => Self::bump(&self.payload_too_large),
            503 => Self::bump(&self.overloaded),
            _ => Self::bump(&self.bad_request),
        }
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_connections: self.refused_connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed) as usize,
            requests: self.requests.load(Ordering::Relaxed),
            scenes_requests: self.scenes_requests.load(Ordering::Relaxed),
            render_requests: self.render_requests.load(Ordering::Relaxed),
            trajectory_requests: self.trajectory_requests.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            health_requests: self.health_requests.load(Ordering::Relaxed),
            shutdown_requests: self.shutdown_requests.load(Ordering::Relaxed),
            unrouted_requests: self.unrouted_requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            gone: self.gone.load(Ordering::Relaxed),
            payload_too_large: self.payload_too_large.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            frames_streamed: self.frames_streamed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_and_status_identities_reconcile() {
        let stats = ServerStats {
            requests: 9,
            scenes_requests: 1,
            render_requests: 4,
            trajectory_requests: 1,
            stats_requests: 1,
            health_requests: 1,
            shutdown_requests: 0,
            unrouted_requests: 1,
            ok: 6,
            bad_request: 1,
            not_found: 1,
            gone: 0,
            payload_too_large: 0,
            overloaded: 1,
            ..Default::default()
        };
        assert_eq!(stats.routed(), stats.requests);
        assert_eq!(stats.responded(), stats.requests);
    }

    #[test]
    fn record_status_buckets_by_code() {
        let counters = ServerCounters::default();
        for status in [200, 201, 400, 404, 410, 413, 422, 503] {
            counters.record_status(status);
        }
        let stats = counters.snapshot();
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.bad_request, 2);
        assert_eq!(stats.not_found, 1);
        assert_eq!(stats.gone, 1);
        assert_eq!(stats.payload_too_large, 1);
        assert_eq!(stats.overloaded, 1);
    }

    #[test]
    fn release_connection_saturates_at_zero() {
        let counters = ServerCounters::default();
        counters.release_connection();
        assert_eq!(counters.snapshot().active_connections, 0);
        ServerCounters::bump(&counters.active_connections);
        ServerCounters::bump(&counters.active_connections);
        counters.release_connection();
        assert_eq!(counters.snapshot().active_connections, 1);
    }
}
