//! Minimal JSON parsing for request bodies.
//!
//! The workspace is dependency-free, so the server carries its own
//! recursive-descent parser. It is deliberately small: objects are kept
//! as ordered `Vec<(String, JsonValue)>` pairs (no hash maps — key order
//! stays deterministic and the nondeterminism lint stays happy), numbers
//! are `f64`, and depth is bounded so a hostile body cannot overflow the
//! stack. Serialization lives with the producers ([`ServerStats::to_json`]
//! and friends format their own objects); this module only reads.
//!
//! [`ServerStats::to_json`]: crate::ServerStats::to_json

/// Maximum nesting depth accepted by [`parse_json`]. Request bodies are
/// flat (camera/trajectory parameters), so anything deeper is hostile.
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs (first match wins on lookup).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first match); `None` for other
    /// variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The numeric value as an exact non-negative integer: finite, no
    /// fractional part, and within `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        let value = self.as_f64()?;
        if value.is_finite() && value >= 0.0 && value.fract() == 0.0 && value <= u64::MAX as f64 {
            Some(value as u64)
        } else {
            None
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(text) => Some(text.as_str()),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        let end = self.pos + literal.len();
        if self.bytes.get(self.pos..end) == Some(literal.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':', "expected ':' after object key")?;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(pairs)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(byte) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input is
                    // a &str, so continuation bytes are guaranteed valid.
                    let len = utf8_len(byte);
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.parse_hex4()?;
        // Surrogate pair: a high surrogate must be followed by \u and a
        // low surrogate; anything else is malformed.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate escape"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.error("unpaired surrogate escape"));
            }
            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(combined).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.error("unpaired surrogate escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(byte @ b'0'..=b'9') => u32::from(byte - b'0'),
                Some(byte @ b'a'..=b'f') => u32::from(byte - b'a') + 10,
                Some(byte @ b'A'..=b'F') => u32::from(byte - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            value = (value << 4) | digit;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|chunk| std::str::from_utf8(chunk).ok())
            .ok_or_else(|| self.error("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if value.is_finite() {
            Ok(JsonValue::Number(value))
        } else {
            Err(self.error("number out of range"))
        }
    }
}

/// Length in bytes of the UTF-8 sequence starting with `byte` (the
/// input came from a `&str`, so the leading byte is always valid).
fn utf8_len(byte: u8) -> usize {
    if byte < 0x80 {
        1
    } else if byte < 0xE0 {
        2
    } else if byte < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_render_request_shapes() {
        let body = r#"{"scene_id": 3, "priority": "high",
                       "camera": {"eye": [0.0, 1.5, -4.0], "fov_y": 0.8,
                                  "width": 64, "height": 48}}"#;
        let value = parse_json(body).expect("valid body");
        assert_eq!(value.get("scene_id").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            value.get("priority").and_then(JsonValue::as_str),
            Some("high")
        );
        let camera = value.get("camera").expect("camera object");
        let eye = camera
            .get("eye")
            .and_then(JsonValue::as_array)
            .expect("eye");
        assert_eq!(eye.len(), 3);
        assert_eq!(eye.first().and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(camera.get("width").and_then(JsonValue::as_u64), Some(64));
    }

    #[test]
    fn parses_literals_strings_and_escapes() {
        let value = parse_json(r#"{"a": null, "b": true, "c": "x\n\u0041\u00e9"}"#)
            .expect("valid document");
        assert_eq!(value.get("a"), Some(&JsonValue::Null));
        assert_eq!(value.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("c").and_then(JsonValue::as_str), Some("x\nAé"));
        let pair = parse_json(r#""\ud83d\ude00""#).expect("surrogate pair");
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "nul",
            "1e999",
            "\"\\ud800\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_hostile_nesting() {
        let deep = format!(
            "{}{}",
            "[".repeat(MAX_JSON_DEPTH + 2),
            "]".repeat(MAX_JSON_DEPTH + 2)
        );
        assert!(parse_json(&deep).is_err());
        let shallow = "[[[[0]]]]";
        assert!(parse_json(shallow).is_ok());
    }

    #[test]
    fn numeric_accessors_guard_their_domains() {
        let value = parse_json("[1.5, -2, 7]").expect("array");
        let items = value.as_array().expect("items");
        assert_eq!(items.first().and_then(JsonValue::as_u64), None);
        assert_eq!(items.get(1).and_then(JsonValue::as_u64), None);
        assert_eq!(items.get(2).and_then(JsonValue::as_u64), Some(7));
    }
}
