//! `splat-server`: the dependency-free network front door.
//!
//! A std-only HTTP/1.1 server over [`std::net::TcpListener`] fronting a
//! shared [`Engine`](splat_engine::Engine), so the in-process serving
//! stack — async submit, the scene registry, the quality ladder — is
//! reachable over a socket. Everything is deterministic and typed:
//! engine refusals map onto wire statuses, frames travel in a digest-
//! stable binary format, and [`ServerStats`] reconciles against
//! [`EngineStats`](splat_engine::EngineStats).
//!
//! ## Endpoints
//!
//! | endpoint              | body                  | response                           |
//! |-----------------------|-----------------------|------------------------------------|
//! | `POST /scenes`        | binary `.splat` scene | `201` `{"scene_id": …}`            |
//! | `POST /render`        | JSON camera request   | `200` binary frame + digest header |
//! | `POST /trajectories`  | JSON orbit request    | `200` chunked frame stream         |
//! | `GET /stats`          | —                     | `200` server + engine counters     |
//! | `GET /healthz`        | —                     | `200` liveness probe               |
//! | `POST /shutdown`      | —                     | `200`, then graceful drain         |
//!
//! ## Backpressure
//!
//! Admission control composes across three layers:
//!
//! 1. **The door**: a bounded connection queue between acceptor and
//!    workers; a full queue refuses with an immediate `503` before any
//!    request byte is read.
//! 2. **The engine**: `AdmissionPolicy`/`QualityPolicy` decide
//!    shed-vs-degrade per job; refusals surface as `503 Retry-After`
//!    (`Overloaded`/`ShutDown`), `404` (`UnknownScene`), `410`
//!    (`Evicted`) or `400` (validation), never as hung sockets.
//! 3. **The stream**: trajectory responses submit frames lazily through
//!    a bounded in-flight window, so a slow reader holds at most
//!    `stream_window` queue slots.
//!
//! ## Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use splat_engine::Engine;
//! use splat_server::{Server, ServerConfig};
//!
//! # fn main() -> Result<(), splat_types::RenderError> {
//! let engine = Arc::new(Engine::builder().workers(2).build()?);
//! let server = Server::start(engine, ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! server.wait_until_shutdown();
//! let (server_stats, engine_stats) = server.shutdown();
//! assert_eq!(server_stats.routed(), server_stats.requests);
//! drop(engine_stats);
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{one_shot, ClientResponse, Connection};
pub use http::{HttpError, Request};
pub use json::{parse_json, JsonValue};
pub use server::{Server, ServerConfig};
pub use stats::ServerStats;
pub use wire::{
    decode_frame, decode_frame_chunk, encode_frame, frame_digest, FrameChunk, WireError,
};
