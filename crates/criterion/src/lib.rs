//! A minimal, offline drop-in for the subset of the [criterion]
//! benchmarking API this workspace uses.
//!
//! The build container has no access to crates.io, so the real `criterion`
//! crate cannot be vendored. This shim keeps the `benches/` sources
//! unchanged (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `criterion_group!`/`criterion_main!`) and implements just enough
//! measurement to be useful: every benchmark is warmed up, then timed over
//! a fixed number of batches, and the per-iteration mean and minimum are
//! printed. Swap the manifest entry back to the real crate to get
//! statistical rigor, HTML reports and regression detection.
//!
//! [criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
const BATCHES: u32 = 20;
/// Target wall-clock spent per benchmark (split across batches).
const TARGET_TIME: Duration = Duration::from_millis(400);

/// Prevents the compiler from optimizing a benchmarked value away.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver. One instance is passed to every function
/// registered through [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's batch count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        run_one(&format!("{}/{}", self.name, id.label), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the measured
/// routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: find an iteration count that gives each batch a
    // measurable duration.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = TARGET_TIME / BATCHES;
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..BATCHES {
        let mut batch = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut batch);
        let per = batch.elapsed / (iters as u32).max(1);
        total += per;
        best = best.min(per);
    }
    let mean = total / BATCHES;
    println!("bench {name:<48} mean {mean:>12.3?}  min {best:>12.3?}  ({iters} iters/batch)");
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a benchmark binary, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u32;
        Criterion::default().bench_function("t", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("sort", 64);
        assert_eq!(id.label, "sort/64");
    }

    #[test]
    fn group_runs_parameterized_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("p", 3), &3u64, |b, &v| {
            b.iter(|| {
                seen = v;
            })
        });
        group.finish();
        assert_eq!(seen, 3);
    }
}
