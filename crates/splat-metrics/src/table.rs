//! Aligned markdown / CSV table emission for experiment binaries.

/// A simple column-oriented results table.
///
/// Every figure-regeneration binary prints one or more of these so the
/// output can be compared directly against the paper's tables and figure
/// series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row length does not match the header count.
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", sep.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, quotes around cells that
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["scene", "speedup"]);
        t.add_row(["train".to_string(), "1.33".to_string()]);
        t.add_row(["residence".to_string(), "1.58".to_string()]);
        t
    }

    #[test]
    fn markdown_contains_headers_separator_and_rows() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scene") && lines[0].contains("speedup"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("train"));
        assert!(lines[3].contains("1.58"));
    }

    #[test]
    fn markdown_columns_are_aligned() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        // All lines have identical length when padded.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["1,5".to_string(), "say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_count_tracks_rows() {
        assert_eq!(sample().row_count(), 2);
        assert_eq!(Table::new(["x"]).row_count(), 0);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only one".to_string()]);
    }
}
