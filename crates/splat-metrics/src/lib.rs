//! Summary statistics and report formatting for GS-TG experiments.
//!
//! Every figure-regeneration binary in `splat-bench` uses this crate to
//! normalize results against a baseline, compute geometric means (as the
//! paper does for its speedup/energy summaries) and emit aligned markdown
//! tables or CSV files.
//!
//! ```
//! use splat_metrics::{geometric_mean, Table};
//!
//! let speedups = [1.2, 1.4, 1.3];
//! let geomean = geometric_mean(&speedups).unwrap();
//! assert!(geomean > 1.2 && geomean < 1.4);
//!
//! let mut table = Table::new(["scene", "speedup"]);
//! table.add_row(["train".to_string(), format!("{geomean:.2}")]);
//! assert!(table.to_markdown().contains("train"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod summary;
pub mod table;

pub use digest::{digest_f32s, fnv1a64, Fnv1a64, FNV1A64_OFFSET, FNV1A64_PRIME};
pub use summary::{geometric_mean, mean, normalize_to, normalize_to_first, Summary};
pub use table::Table;
