//! Tiny deterministic FNV-1a digests for golden-image regression tests.
//!
//! A framebuffer digest turns "are these two million floats bit-identical
//! to last release" into one `u64` comparison that can be pinned in a test
//! source file. FNV-1a is the right tool precisely because it is *not*
//! cryptographic: it is a dozen lines, allocation-free, byte-order
//! explicit (little-endian, `f32::to_bits`), and stable forever — the
//! golden values never rot with a dependency bump.
//!
//! ```
//! use splat_metrics::{digest_f32s, fnv1a64, Fnv1a64};
//!
//! // The classic FNV-1a test vector.
//! assert_eq!(fnv1a64(*b"foobar"), 0x85944171f73967e8);
//!
//! // Streaming and one-shot digests agree.
//! let mut hasher = Fnv1a64::new();
//! hasher.write_f32(1.5);
//! hasher.write_f32(-0.25);
//! assert_eq!(hasher.finish(), digest_f32s([1.5, -0.25]));
//! ```

/// The FNV-1a 64-bit offset basis.
pub const FNV1A64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
///
/// Bytes are absorbed one at a time (`hash = (hash ^ byte) * prime`);
/// floats are absorbed as their IEEE-754 bit patterns in little-endian
/// byte order, so the digest is exactly reproducible across platforms and
/// distinguishes `-0.0` from `+0.0` — bit drift of any kind must trip a
/// golden test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV1A64_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state = (self.state ^ u64::from(byte)).wrapping_mul(FNV1A64_PRIME);
        }
    }

    /// Absorbs one `f32` as its little-endian bit pattern.
    pub fn write_f32(&mut self, value: f32) {
        self.write(&value.to_bits().to_le_bytes());
    }

    /// Absorbs one `u64` as its little-endian bytes (useful for mixing
    /// dimensions into an image digest).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64-bit digest of a byte sequence.
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hasher = Fnv1a64::new();
    for byte in bytes {
        hasher.write(&[byte]);
    }
    hasher.finish()
}

/// One-shot digest of a sequence of `f32`s (little-endian bit patterns) —
/// the helper golden-image tests use on framebuffer channel data.
pub fn digest_f32s(values: impl IntoIterator<Item = f32>) -> u64 {
    let mut hasher = Fnv1a64::new();
    for value in values {
        hasher.write_f32(value);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification draft.
        assert_eq!(fnv1a64([]), FNV1A64_OFFSET);
        assert_eq!(fnv1a64(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(*b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut hasher = Fnv1a64::new();
        hasher.write(b"foo");
        hasher.write(b"bar");
        assert_eq!(hasher.finish(), fnv1a64(*b"foobar"));
    }

    #[test]
    fn float_digest_is_bit_exact() {
        // Same values → same digest; any bit difference → different digest.
        assert_eq!(digest_f32s([0.5, 1.5]), digest_f32s([0.5, 1.5]));
        assert_ne!(digest_f32s([0.5, 1.5]), digest_f32s([1.5, 0.5]));
        assert_ne!(digest_f32s([0.0]), digest_f32s([-0.0]));
        assert_ne!(digest_f32s([]), digest_f32s([0.0]));
    }

    #[test]
    fn write_u64_mixes_dimensions() {
        let mut with_dims = Fnv1a64::new();
        with_dims.write_u64(96);
        with_dims.write_u64(64);
        with_dims.write_f32(0.5);
        assert_ne!(with_dims.finish(), digest_f32s([0.5]));
    }

    #[test]
    fn pinned_digest_of_a_known_sequence_never_drifts() {
        // A golden value for the golden-value helper itself: if this
        // constant changes, every pinned framebuffer digest is invalid.
        let digest = digest_f32s((0..16).map(|i| i as f32 * 0.125));
        assert_eq!(digest, 0x065b_0eb7_ae44_633b);
    }
}
