//! Aggregate statistics over experiment results.

/// Arithmetic mean of a slice, or `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of a slice of strictly positive values, or `None` when
/// the slice is empty or contains a non-positive value. The paper reports
/// its cross-scene speedups and energy-efficiency gains as geometric means.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Normalizes every value to a reference: `values[i] / reference`.
///
/// Returns `None` when the reference is zero, NaN or infinite — a baseline
/// measurement of zero (or a poisoned one) cannot anchor a normalization,
/// and silently dividing by it would propagate NaN/∞ into every figure.
pub fn normalize_to(values: &[f64], reference: f64) -> Option<Vec<f64>> {
    if !reference.is_finite() || reference == 0.0 {
        return None;
    }
    Some(values.iter().map(|v| v / reference).collect())
}

/// Normalizes every value to the first element of the slice. Returns
/// `None` when the slice is empty or its first element is zero, NaN or
/// infinite.
pub fn normalize_to_first(values: &[f64]) -> Option<Vec<f64>> {
    values
        .first()
        .and_then(|&first| normalize_to(values, first))
}

/// Five-number-style summary of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (`NaN` if any sample is non-positive).
    pub geomean: f64,
}

impl Summary {
    /// Builds a summary from samples, or `None` for an empty slice.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        Some(Self {
            count: values.len(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values)?,
            geomean: geometric_mean(values).unwrap_or(f64::NAN),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(Summary::from_values(&[]), None);
    }

    #[test]
    fn geometric_mean_of_constants_is_the_constant() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_non_positive() {
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geometric_mean_known_value() {
        // geomean(1, 4) = 2
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_first_starts_at_one() {
        let norm = normalize_to_first(&[4.0, 8.0, 2.0]).unwrap();
        assert_eq!(norm, vec![1.0, 2.0, 0.5]);
        assert_eq!(normalize_to_first(&[]), None);
    }

    #[test]
    fn invalid_references_are_rejected() {
        assert_eq!(normalize_to(&[1.0], 0.0), None);
        assert_eq!(normalize_to(&[1.0], f64::NAN), None);
        assert_eq!(normalize_to(&[1.0], f64::INFINITY), None);
        assert_eq!(normalize_to(&[1.0], f64::NEG_INFINITY), None);
        assert_eq!(normalize_to_first(&[0.0, 2.0]), None);
        assert_eq!(normalize_to_first(&[f64::NAN, 2.0]), None);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let s = Summary::from_values(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.geomean - 2.0).abs() < 1e-12);
    }

    /// Deterministic stand-in for the previous proptest generator: a
    /// spread of positive value vectors with varying lengths.
    fn sample_vectors() -> Vec<Vec<f64>> {
        let mut rng = splat_types::rng::Rng::seed_from_u64(0x2545_F491_4F6C_DD1D);
        (0..100)
            .map(|case| {
                let len = 1 + (case % 19);
                (0..len).map(|_| rng.range_f64(0.01, 100.0)).collect()
            })
            .collect()
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        for values in sample_vectors() {
            let g = geometric_mean(&values).unwrap();
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(g >= min - 1e-9 && g <= max + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn geomean_never_exceeds_arithmetic_mean() {
        for values in sample_vectors() {
            let g = geometric_mean(&values).unwrap();
            let a = mean(&values).unwrap();
            assert!(g <= a + 1e-9, "{values:?}");
        }
    }
}
