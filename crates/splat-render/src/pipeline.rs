//! The end-to-end baseline rendering pipeline.
//!
//! [`Renderer`] is a thin composition of three [`PipelineStage`]s over the
//! shared `splat-core` engine: preprocessing (feature computation, culling,
//! tile identification), tile-wise sorting and tile-wise rasterization.
//! Every stage accumulates into one [`StageCounts`] and is timed by
//! [`run_timed`]; rasterization fans out across tiles through the shared
//! [`TileScheduler`] and blends through the shared
//! [`splat_core::rasterize_tile`] kernel.

use crate::config::RenderConfig;
use crate::preprocess::{preprocess, ProjectedGaussian};
use crate::sort::sort_tiles;
use crate::tiling::{identify_tiles_with, TileAssignments, TileGrid};
use splat_core::{
    rasterize_tile_spans_with, rasterize_tile_with, run_timed, Framebuffer, HasExecution,
    PipelineStage, RenderBackend, RenderRequest, RenderStats, SpanMode, SpanScratch, StageCounts,
    TileScheduler,
};
use splat_scene::Scene;
use splat_types::{Camera, RenderError, Rgb};

pub use splat_core::RenderOutput;

/// Intermediate pipeline state exposed for pipelines (such as GS-TG) that
/// reuse the baseline preprocessing and for equivalence tests.
#[derive(Debug, Clone)]
pub struct PreparedFrame {
    /// Splats that survived culling, in scene order.
    pub projected: Vec<ProjectedGaussian>,
    /// Per-tile splat lists after identification (and, if requested,
    /// sorting).
    pub assignments: TileAssignments,
    /// Counters accumulated so far.
    pub counts: StageCounts,
}

/// Stage 1: preprocessing plus tile identification (Fig. 1 of the paper).
struct PrepareStage<'a> {
    scene: &'a Scene,
    camera: &'a Camera,
    config: &'a RenderConfig,
}

impl PipelineStage for PrepareStage<'_> {
    type Output = (Vec<ProjectedGaussian>, TileAssignments);

    fn name(&self) -> &'static str {
        "preprocess"
    }

    fn run(self, counts: &mut StageCounts) -> Self::Output {
        let projected = preprocess(self.scene, self.camera, self.config, counts);
        let grid = TileGrid::new(
            self.camera.width(),
            self.camera.height(),
            self.config.tile_size,
        );
        let assignments = identify_tiles_with(
            &projected,
            grid,
            self.config.boundary,
            self.config.prepass,
            counts,
        );
        (projected, assignments)
    }
}

/// Stage 2: tile-wise depth sorting.
struct SortStage<'a> {
    projected: &'a [ProjectedGaussian],
    assignments: TileAssignments,
}

impl PipelineStage for SortStage<'_> {
    type Output = TileAssignments;

    fn name(&self) -> &'static str {
        "sort"
    }

    fn run(mut self, counts: &mut StageCounts) -> TileAssignments {
        sort_tiles(&mut self.assignments, self.projected, counts);
        self.assignments
    }
}

/// Stage 3: tile-wise rasterization through the shared kernel.
struct RasterStage<'a> {
    renderer: &'a Renderer,
    projected: &'a [ProjectedGaussian],
    assignments: &'a TileAssignments,
    camera: &'a Camera,
}

impl PipelineStage for RasterStage<'_> {
    /// The rendered framebuffer plus the span-table build time spent inside
    /// the raster window (zero in `SpanMode::Full`).
    type Output = (Framebuffer, std::time::Duration);

    fn name(&self) -> &'static str {
        "raster"
    }

    fn run(self, counts: &mut StageCounts) -> Self::Output {
        let mut image = Framebuffer::new(0, 0, self.renderer.background);
        let mut span = SpanScratch::new();
        *counts += self.renderer.rasterize_into(
            self.projected,
            self.assignments,
            self.camera,
            &mut image,
            &mut span,
        );
        (image, span.take_build_time())
    }
}

/// The baseline tile-based renderer.
#[derive(Debug, Clone)]
pub struct Renderer {
    config: RenderConfig,
    background: Rgb,
}

impl Renderer {
    /// Creates a renderer with the given configuration and a black
    /// background.
    pub fn new(config: RenderConfig) -> Self {
        Self {
            config,
            background: Rgb::BLACK,
        }
    }

    /// Returns a copy using the given background color.
    pub fn with_background(mut self, background: Rgb) -> Self {
        self.background = background;
        self
    }

    /// The renderer's configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// The background color pixels start from.
    pub fn background(&self) -> Rgb {
        self.background
    }

    /// Runs preprocessing, tile identification and sorting, returning the
    /// intermediate state without rasterizing. Useful for experiments that
    /// only need counts and for the GS-TG equivalence checks.
    pub fn prepare(&self, scene: &Scene, camera: &Camera) -> PreparedFrame {
        let mut counts = StageCounts::new();
        let (projected, assignments) = PrepareStage {
            scene,
            camera,
            config: &self.config,
        }
        .run(&mut counts);
        let assignments = SortStage {
            projected: &projected,
            assignments,
        }
        .run(&mut counts);
        PreparedFrame {
            projected,
            assignments,
            counts,
        }
    }

    /// Renders one view of the scene.
    ///
    /// The framebuffer dimensions come from the camera intrinsics, so the
    /// same scene can be rendered at reduced resolution by passing a
    /// smaller camera.
    pub fn render(&self, scene: &Scene, camera: &Camera) -> RenderOutput {
        let mut counts = StageCounts::new();

        let ((projected, assignments), preprocess_time) = run_timed(
            PrepareStage {
                scene,
                camera,
                config: &self.config,
            },
            &mut counts,
        );
        let (assignments, sort_time) = run_timed(
            SortStage {
                projected: &projected,
                assignments,
            },
            &mut counts,
        );
        let ((image, span_build_time), raster_time) = run_timed(
            RasterStage {
                renderer: self,
                projected: &projected,
                assignments: &assignments,
                camera,
            },
            &mut counts,
        );

        RenderOutput {
            image,
            stats: RenderStats {
                counts,
                preprocess_time,
                identify_time: std::time::Duration::ZERO,
                sort_time,
                raster_time,
                span_build_time,
            },
        }
    }

    /// Rasterizes all tiles of a prepared frame into a framebuffer.
    ///
    /// Tiles fan out across the configured worker threads through the
    /// shared [`TileScheduler`]; every tile writes a disjoint framebuffer
    /// region and outputs merge in tile order, so the result is bit-exact
    /// for any thread count.
    pub fn rasterize(
        &self,
        projected: &[ProjectedGaussian],
        assignments: &TileAssignments,
        camera: &Camera,
    ) -> (Framebuffer, StageCounts) {
        // Start from an empty framebuffer: rasterize_into's reset performs
        // the one-and-only background fill.
        let mut image = Framebuffer::new(0, 0, self.background);
        let mut span = SpanScratch::new();
        let counts = self.rasterize_into(projected, assignments, camera, &mut image, &mut span);
        (image, counts)
    }

    /// Rasterizes all tiles of a prepared frame into a recycled
    /// framebuffer, which is reset to the camera dimensions first.
    ///
    /// With one worker thread every tile is shaded directly into `image`
    /// (no per-tile buffers — the allocation-free session path); with more
    /// threads the fan-out runs through the shared [`TileScheduler`] as in
    /// [`Renderer::rasterize`]. Both paths perform identical per-pixel
    /// operations, so pixels and [`StageCounts`] are bit-identical.
    pub fn rasterize_into(
        &self,
        projected: &[ProjectedGaussian],
        assignments: &TileAssignments,
        camera: &Camera,
        image: &mut Framebuffer,
        span: &mut SpanScratch,
    ) -> StageCounts {
        let grid = *assignments.grid();
        image.reset(camera.width(), camera.height(), self.background);
        let mut counts = StageCounts::new();

        if self.config.threads() <= 1 {
            for tile in 0..grid.tile_count() {
                let (tx, ty) = grid.tile_coords(tile);
                let rect = grid.tile_rect(tx, ty);
                match self.config.span() {
                    SpanMode::Full => splat_core::rasterize_tile_into_with(
                        assignments.tile(tile),
                        projected,
                        &rect,
                        self.background,
                        self.config.simd(),
                        image,
                        &mut counts,
                    ),
                    SpanMode::RowSpans => splat_core::rasterize_tile_spans_into_with(
                        assignments.tile(tile),
                        projected,
                        &rect,
                        self.background,
                        self.config.simd(),
                        image,
                        &mut counts,
                        span,
                    ),
                }
            }
            return counts;
        }

        let scheduler = TileScheduler::from_exec(self.config.execution());
        let tiles = scheduler.run(grid.tile_count(), |tile| {
            let (tx, ty) = grid.tile_coords(tile);
            let rect = grid.tile_rect(tx, ty);
            match self.config.span() {
                SpanMode::Full => (
                    rect,
                    rasterize_tile_with(
                        assignments.tile(tile),
                        projected,
                        &rect,
                        self.background,
                        self.config.simd(),
                    ),
                    std::time::Duration::ZERO,
                ),
                SpanMode::RowSpans => {
                    let mut local = SpanScratch::new();
                    let out = rasterize_tile_spans_with(
                        assignments.tile(tile),
                        projected,
                        &rect,
                        self.background,
                        self.config.simd(),
                        &mut local,
                    );
                    (rect, out, local.take_build_time())
                }
            }
        });

        for (rect, out, built) in tiles {
            counts += out.counts;
            span.add_build_time(built);
            image.write_region(rect.x0 as u32, rect.y0 as u32, out.width, &out.pixels);
        }
        counts
    }
}

impl RenderBackend for Renderer {
    fn name(&self) -> &'static str {
        "baseline"
    }

    /// Serves one request through [`Renderer::render`] after validating the
    /// request and the configuration, so malformed input returns a typed
    /// error instead of panicking.
    fn render(&mut self, request: &RenderRequest<'_>) -> Result<RenderOutput, RenderError> {
        self.config.validate()?;
        request.validate()?;
        TileGrid::try_new(
            request.camera.width(),
            request.camera.height(),
            self.config.tile_size,
        )?;
        Ok(Renderer::render(self, request.scene, &request.camera))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryMethod;
    use splat_types::{CameraIntrinsics, Gaussian3d, Vec3};

    fn small_scene() -> (Scene, Camera) {
        let gaussians = vec![
            Gaussian3d::builder()
                .position(Vec3::new(0.0, 0.0, 5.0))
                .scale(Vec3::splat(0.3))
                .opacity(0.9)
                .base_color([1.0, 0.2, 0.2])
                .build(),
            Gaussian3d::builder()
                .position(Vec3::new(0.8, 0.4, 7.0))
                .scale(Vec3::splat(0.4))
                .opacity(0.7)
                .base_color([0.2, 1.0, 0.2])
                .build(),
            Gaussian3d::builder()
                .position(Vec3::new(-1.0, -0.5, 6.0))
                .scale(Vec3::splat(0.5))
                .opacity(0.8)
                .base_color([0.2, 0.2, 1.0])
                .build(),
        ];
        let scene = Scene::new("unit", 128, 96, gaussians);
        let camera = Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 128, 96),
        );
        (scene, camera)
    }

    #[test]
    fn render_produces_non_empty_image() {
        let (scene, camera) = small_scene();
        let renderer = Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb));
        let out = renderer.render(&scene, &camera);
        assert_eq!(out.image.width(), 128);
        assert_eq!(out.image.height(), 96);
        assert!(out.image.mean_luminance() > 0.0);
        assert!(out.stats.counts.visible_gaussians > 0);
        assert!(out.stats.counts.alpha_computations > 0);
        assert_eq!(out.stats.counts.pixels, 128 * 96);
    }

    #[test]
    fn framebuffer_matches_camera_not_scene_resolution() {
        let (scene, _) = small_scene();
        let small_camera = Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 64, 48),
        );
        let renderer = Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb));
        let out = renderer.render(&scene, &small_camera);
        assert_eq!((out.image.width(), out.image.height()), (64, 48));
    }

    #[test]
    fn all_boundary_methods_render_identical_images() {
        // Tile identification only decides which tiles consider a splat;
        // false positives cost work but never change pixel values, so the
        // three boundary methods must agree exactly.
        let (scene, camera) = small_scene();
        let reference =
            Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb)).render(&scene, &camera);
        for method in [BoundaryMethod::Obb, BoundaryMethod::Ellipse] {
            let out = Renderer::new(RenderConfig::new(16, method)).render(&scene, &camera);
            assert_eq!(
                out.image.max_abs_diff(&reference.image),
                0.0,
                "method {method} diverged"
            );
        }
    }

    #[test]
    fn all_tile_sizes_render_identical_images() {
        let (scene, camera) = small_scene();
        let reference =
            Renderer::new(RenderConfig::new(8, BoundaryMethod::Ellipse)).render(&scene, &camera);
        for tile_size in [16, 32, 64] {
            let out = Renderer::new(RenderConfig::new(tile_size, BoundaryMethod::Ellipse))
                .render(&scene, &camera);
            assert_eq!(
                out.image.max_abs_diff(&reference.image),
                0.0,
                "tile size {tile_size} diverged"
            );
        }
    }

    #[test]
    fn parallel_rendering_matches_sequential() {
        let (scene, camera) = small_scene();
        let sequential =
            Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb)).render(&scene, &camera);
        let parallel = Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb).with_threads(4))
            .render(&scene, &camera);
        assert_eq!(parallel.image.max_abs_diff(&sequential.image), 0.0);
        assert_eq!(parallel.stats.counts, sequential.stats.counts);
    }

    #[test]
    fn prepare_exposes_sorted_assignments() {
        let (scene, camera) = small_scene();
        let renderer = Renderer::new(RenderConfig::new(16, BoundaryMethod::Ellipse));
        let frame = renderer.prepare(&scene, &camera);
        assert!(frame.counts.tile_intersections > 0);
        for (_, list) in frame.assignments.iter() {
            assert!(crate::sort::is_sorted_by_depth(list, &frame.projected));
        }
    }

    #[test]
    fn prepare_and_render_agree_on_counts() {
        // The stage composition must charge identical pre-raster work
        // whether or not rasterization follows.
        let (scene, camera) = small_scene();
        let renderer = Renderer::new(RenderConfig::new(16, BoundaryMethod::Ellipse));
        let frame = renderer.prepare(&scene, &camera);
        let out = renderer.render(&scene, &camera);
        assert_eq!(
            frame.counts.tile_intersections,
            out.stats.counts.tile_intersections
        );
        assert_eq!(
            frame.counts.sort_comparisons,
            out.stats.counts.sort_comparisons
        );
        assert_eq!(
            frame.counts.visible_gaussians,
            out.stats.counts.visible_gaussians
        );
    }

    #[test]
    fn backend_trait_matches_inherent_render() {
        let (scene, camera) = small_scene();
        let renderer = Renderer::new(RenderConfig::new(16, BoundaryMethod::Ellipse));
        let direct = renderer.render(&scene, &camera);
        let mut backend: Box<dyn RenderBackend> = Box::new(renderer);
        assert_eq!(backend.name(), "baseline");
        let served = backend
            .render(&RenderRequest::new(&scene, camera))
            .expect("valid request");
        assert_eq!(served.image.max_abs_diff(&direct.image), 0.0);
        assert_eq!(served.stats.counts, direct.stats.counts);
    }

    #[test]
    fn backend_trait_rejects_invalid_input_without_panicking() {
        let (scene, camera) = small_scene();
        let mut backend = Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb));
        let empty = Scene::new("empty", 32, 32, Vec::new());
        assert!(RenderBackend::render(&mut backend, &RenderRequest::new(&empty, camera)).is_err());
        // A config hand-mutated into an invalid state is caught too.
        let mut bad = Renderer::new(RenderConfig::default());
        bad.config.tile_size = 0;
        assert!(RenderBackend::render(&mut bad, &RenderRequest::new(&scene, camera)).is_err());
    }

    #[test]
    fn exact_prepass_renders_identical_pixels_with_fewer_intersections() {
        let (scene, camera) = small_scene();
        let conservative =
            Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb)).render(&scene, &camera);
        let exact = Renderer::new(
            RenderConfig::new(16, BoundaryMethod::Aabb)
                .with_prepass(crate::config::PrepassMode::Exact),
        )
        .render(&scene, &camera);
        assert_eq!(exact.image.max_abs_diff(&conservative.image), 0.0);
        assert!(
            exact.stats.counts.tile_intersections <= conservative.stats.counts.tile_intersections
        );
        assert_eq!(
            exact.stats.counts.tile_intersections + exact.stats.counts.prepass_overcount_trimmed,
            conservative.stats.counts.tile_intersections
        );
    }

    #[test]
    fn simd_modes_render_bit_identical_images() {
        let (scene, camera) = small_scene();
        let reference =
            Renderer::new(RenderConfig::new(16, BoundaryMethod::Aabb)).render(&scene, &camera);
        for simd in splat_core::SimdMode::ALL {
            for threads in [1, 4] {
                let out = Renderer::new(
                    RenderConfig::new(16, BoundaryMethod::Aabb)
                        .with_threads(threads)
                        .with_simd(simd),
                )
                .render(&scene, &camera);
                assert_eq!(
                    out.image.max_abs_diff(&reference.image),
                    0.0,
                    "{simd:?} x{threads} diverged"
                );
                assert_eq!(out.stats.counts, reference.stats.counts);
            }
        }
    }

    #[test]
    fn larger_tiles_do_more_raster_work_and_less_sort_work() {
        let (scene, camera) = small_scene();
        let small =
            Renderer::new(RenderConfig::new(8, BoundaryMethod::Aabb)).render(&scene, &camera);
        let large =
            Renderer::new(RenderConfig::new(64, BoundaryMethod::Aabb)).render(&scene, &camera);
        assert!(
            large.stats.counts.alpha_computations >= small.stats.counts.alpha_computations,
            "raster work should grow with tile size"
        );
        assert!(
            large.stats.counts.tile_intersections <= small.stats.counts.tile_intersections,
            "sorting keys should shrink with tile size"
        );
    }
}
