//! Tile grid and tile identification.
//!
//! The output image is divided into square tiles; tile identification
//! determines, per projected splat, which tiles it influences. The same
//! machinery serves group identification in the GS-TG pipeline (a tile
//! group is simply a grid with a larger tile size).

use crate::bounds::{GaussianFootprint, TileRect};
use crate::config::{BoundaryMethod, PrepassMode};
use crate::preprocess::ProjectedGaussian;
use crate::stats::StageCounts;
use splat_core::{CsrAssignments, CsrScratch};
use splat_types::{RenderError, Vec2};

/// A regular grid of square tiles covering the output image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    tile_size: u32,
    width: u32,
    height: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TileGrid {
    /// Creates a grid of `tile_size`-pixel tiles covering a
    /// `width`×`height` image. Border tiles may be partially outside the
    /// image, exactly as in the reference implementation.
    ///
    /// # Panics
    ///
    /// Panics when `tile_size` is zero or the image is empty.
    pub fn new(width: u32, height: u32, tile_size: u32) -> Self {
        assert!(tile_size > 0, "tile size must be non-zero");
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self {
            tile_size,
            width,
            height,
            tiles_x: width.div_ceil(tile_size),
            tiles_y: height.div_ceil(tile_size),
        }
    }

    /// Fallible variant of [`TileGrid::new`] for the panic-free serving
    /// path: malformed grid parameters become typed errors instead of
    /// panics.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidTileSize`] when `tile_size` is zero
    /// and [`RenderError::InvalidResolution`] when the image is empty.
    pub fn try_new(width: u32, height: u32, tile_size: u32) -> Result<Self, RenderError> {
        if tile_size == 0 {
            return Err(RenderError::InvalidTileSize { tile_size });
        }
        if width == 0 || height == 0 {
            return Err(RenderError::InvalidResolution { width, height });
        }
        Ok(Self::new(width, height, tile_size))
    }

    /// Edge length of a tile in pixels.
    #[inline]
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Total number of tiles.
    #[inline]
    pub fn tile_count(&self) -> usize {
        (self.tiles_x as usize) * (self.tiles_y as usize)
    }

    /// Flattened tile index for tile coordinates `(tx, ty)`.
    #[inline]
    pub fn tile_index(&self, tx: u32, ty: u32) -> usize {
        (ty as usize) * (self.tiles_x as usize) + (tx as usize)
    }

    /// Tile coordinates for a flattened tile index.
    #[inline]
    pub fn tile_coords(&self, index: usize) -> (u32, u32) {
        (
            (index % self.tiles_x as usize) as u32,
            (index / self.tiles_x as usize) as u32,
        )
    }

    /// Pixel-space rectangle of tile `(tx, ty)`, clipped to the image.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> TileRect {
        let x0 = (tx * self.tile_size) as f32;
        let y0 = (ty * self.tile_size) as f32;
        let x1 = (((tx + 1) * self.tile_size).min(self.width)) as f32;
        let y1 = (((ty + 1) * self.tile_size).min(self.height)) as f32;
        TileRect::new(x0, y0, x1, y1)
    }

    /// Pixel-space rectangle of tile `(tx, ty)` *without* clipping to the
    /// image border. Identification uses the unclipped rectangle so that a
    /// splat overlapping the padding region of a border tile is still
    /// assigned to it (matching the reference implementation's grid math).
    pub fn tile_rect_unclipped(&self, tx: u32, ty: u32) -> TileRect {
        let x0 = (tx * self.tile_size) as f32;
        let y0 = (ty * self.tile_size) as f32;
        TileRect::new(
            x0,
            y0,
            x0 + self.tile_size as f32,
            y0 + self.tile_size as f32,
        )
    }

    /// Range of tile coordinates `(tx0..tx1, ty0..ty1)` whose tiles overlap
    /// an axis-aligned box of `half_extent` around `center` (both in
    /// pixels). The range is clamped to the grid.
    pub fn tile_range(&self, center: Vec2, half_extent: Vec2) -> (u32, u32, u32, u32) {
        let clamp_x = |v: f32| v.clamp(0.0, self.tiles_x as f32) as u32;
        let clamp_y = |v: f32| v.clamp(0.0, self.tiles_y as f32) as u32;
        let tx0 = clamp_x(((center.x - half_extent.x) / self.tile_size as f32).floor());
        let ty0 = clamp_y(((center.y - half_extent.y) / self.tile_size as f32).floor());
        let tx1 = clamp_x(((center.x + half_extent.x) / self.tile_size as f32).floor() + 1.0);
        let ty1 = clamp_y(((center.y + half_extent.y) / self.tile_size as f32).floor() + 1.0);
        (tx0, tx1, ty0, ty1)
    }
}

/// The result of tile identification: for every tile, the list of projected
/// splat positions (indices into the `ProjectedGaussian` slice) that
/// influence it, in scene order. Stored as a flat CSR layout
/// ([`CsrAssignments`]) so a session can rebuild it in place every frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAssignments {
    grid: TileGrid,
    per_tile: CsrAssignments<u32>,
    /// Number of tiles intersected by each projected splat (same indexing
    /// as the `ProjectedGaussian` slice).
    tiles_per_gaussian: Vec<u32>,
}

impl TileAssignments {
    /// An empty assignment set (one empty bin over a 1×1 placeholder grid),
    /// ready to be rebuilt in place by [`identify_tiles_into`].
    pub fn empty() -> Self {
        let grid = TileGrid::new(1, 1, 1);
        Self {
            grid,
            per_tile: CsrAssignments::with_bins(grid.tile_count()),
            tiles_per_gaussian: Vec::new(),
        }
    }

    /// The grid the assignments refer to.
    #[inline]
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Splat list of the tile with flattened index `tile`.
    #[inline]
    pub fn tile(&self, tile: usize) -> &[u32] {
        self.per_tile.bin(tile)
    }

    /// Mutable access used by the sorting stage.
    #[inline]
    pub(crate) fn tile_mut(&mut self, tile: usize) -> &mut [u32] {
        self.per_tile.bin_mut(tile)
    }

    /// Iterates over `(tile_index, splat_list)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.per_tile.iter()
    }

    /// Total number of (tile, splat) pairs — the number of sort keys the
    /// tile-wise sorting stage has to handle.
    pub fn total_entries(&self) -> u64 {
        self.per_tile.total_entries()
    }

    /// Bytes currently reserved by the assignment buffers.
    pub fn footprint_bytes(&self) -> usize {
        self.per_tile.footprint_bytes()
            + self.tiles_per_gaussian.capacity() * std::mem::size_of::<u32>()
    }

    /// Number of tiles each projected splat intersects.
    pub fn tiles_per_gaussian(&self) -> &[u32] {
        &self.tiles_per_gaussian
    }

    /// Fraction of projected splats that are shared between two or more
    /// tiles (Table I of the paper). Splats intersecting zero tiles are
    /// excluded from the denominator.
    pub fn shared_fraction(&self) -> f64 {
        let intersecting = self.tiles_per_gaussian.iter().filter(|&&n| n >= 1).count();
        if intersecting == 0 {
            return 0.0;
        }
        let shared = self.tiles_per_gaussian.iter().filter(|&&n| n >= 2).count();
        shared as f64 / intersecting as f64
    }

    /// Mean number of intersected tiles per splat (Fig. 5), over splats
    /// that intersect at least one tile.
    pub fn mean_tiles_per_gaussian(&self) -> f64 {
        let intersecting: Vec<u32> = self
            .tiles_per_gaussian
            .iter()
            .copied()
            .filter(|&n| n >= 1)
            .collect();
        if intersecting.is_empty() {
            return 0.0;
        }
        intersecting.iter().map(|&n| f64::from(n)).sum::<f64>() / intersecting.len() as f64
    }
}

/// Runs tile identification for all projected splats against a grid using
/// the given boundary method and the conservative prepass. Counters are
/// accumulated into `counts`.
pub fn identify_tiles(
    projected: &[ProjectedGaussian],
    grid: TileGrid,
    boundary: BoundaryMethod,
    counts: &mut StageCounts,
) -> TileAssignments {
    identify_tiles_with(projected, grid, boundary, PrepassMode::Conservative, counts)
}

/// [`identify_tiles`] with an explicit [`PrepassMode`].
pub fn identify_tiles_with(
    projected: &[ProjectedGaussian],
    grid: TileGrid,
    boundary: BoundaryMethod,
    prepass: PrepassMode,
    counts: &mut StageCounts,
) -> TileAssignments {
    let mut scratch = CsrScratch::new();
    let mut out = TileAssignments::empty();
    identify_tiles_into(
        projected,
        grid,
        boundary,
        prepass,
        counts,
        &mut scratch,
        &mut out,
    );
    out
}

/// In-place variant of [`identify_tiles`] used by the render sessions:
/// `out` is rebuilt through `scratch`, retaining both allocations across
/// frames. Every intersection test is performed (and charged) exactly once;
/// the staged `(tile, slot)` pairs are then counting-sorted into the CSR
/// layout (counting prepass → prefix-sum offsets → stable scatter),
/// preserving scene order within each tile.
///
/// Prepass accounting: `tiles_tested` counts every geometric test the
/// prepass performs (the boundary tests, plus the exact ellipse refinements
/// in [`PrepassMode::Exact`]); `tiles_hit` counts accepted candidates and
/// always equals `tile_intersections` (the flat intersection-list length);
/// `prepass_overcount_trimmed` counts conservative acceptances the exact
/// refinement rejected.
#[allow(clippy::too_many_arguments)]
pub fn identify_tiles_into(
    projected: &[ProjectedGaussian],
    grid: TileGrid,
    boundary: BoundaryMethod,
    prepass: PrepassMode,
    counts: &mut StageCounts,
    scratch: &mut CsrScratch<u32>,
    out: &mut TileAssignments,
) {
    out.grid = grid;
    out.tiles_per_gaussian.clear();
    out.tiles_per_gaussian.resize(projected.len(), 0);
    scratch.clear();

    // The exact refinement only adds information when the configured
    // boundary test is itself not already the exact ellipse test.
    let refine = prepass == PrepassMode::Exact && boundary != BoundaryMethod::Ellipse;

    for (slot, splat) in projected.iter().enumerate() {
        let Some(footprint) = GaussianFootprint::from_covariance(splat.mean, splat.cov) else {
            continue;
        };
        let half_extent = footprint.candidate_half_extent(boundary);
        let (tx0, tx1, ty0, ty1) = grid.tile_range(splat.mean, half_extent);
        for ty in ty0..ty1 {
            for tx in tx0..tx1 {
                counts.tile_tests += 1;
                counts.tiles_tested += 1;
                let rect = grid.tile_rect_unclipped(tx, ty);
                if footprint.intersects(&rect, boundary) {
                    if refine {
                        counts.tiles_tested += 1;
                        if !footprint.intersects(&rect, BoundaryMethod::Ellipse) {
                            counts.prepass_overcount_trimmed += 1;
                            continue;
                        }
                    }
                    counts.tile_intersections += 1;
                    counts.tiles_hit += 1;
                    scratch.stage(grid.tile_index(tx, ty) as u32, slot as u32);
                    out.tiles_per_gaussian[slot] += 1;
                }
            }
        }
    }

    scratch.build_into(grid.tile_count(), &mut out.per_tile);
}

#[cfg(test)]
mod tests {
    use super::*;
    use splat_types::{Mat2, Rgb};

    fn projected(mean: Vec2, sigma: f32) -> ProjectedGaussian {
        let cov = Mat2::from_symmetric(sigma * sigma, 0.0, sigma * sigma);
        ProjectedGaussian {
            index: 0,
            depth: 1.0,
            mean,
            cov,
            inv_cov: cov.inverse().unwrap(),
            opacity: 0.9,
            color: Rgb::WHITE,
        }
    }

    #[test]
    fn grid_dimensions_round_up() {
        let grid = TileGrid::new(100, 50, 16);
        assert_eq!(grid.tiles_x(), 7);
        assert_eq!(grid.tiles_y(), 4);
        assert_eq!(grid.tile_count(), 28);
    }

    #[test]
    fn tile_rect_is_clipped_at_border() {
        let grid = TileGrid::new(100, 50, 16);
        let rect = grid.tile_rect(6, 3);
        assert_eq!(rect.x1, 100.0);
        assert_eq!(rect.y1, 50.0);
        let unclipped = grid.tile_rect_unclipped(6, 3);
        assert_eq!(unclipped.x1, 112.0);
        assert_eq!(unclipped.y1, 64.0);
    }

    #[test]
    fn tile_index_round_trips() {
        let grid = TileGrid::new(256, 128, 16);
        for ty in 0..grid.tiles_y() {
            for tx in 0..grid.tiles_x() {
                let idx = grid.tile_index(tx, ty);
                assert_eq!(grid.tile_coords(idx), (tx, ty));
            }
        }
    }

    #[test]
    fn tile_range_clamps_to_grid() {
        let grid = TileGrid::new(128, 128, 16);
        let (tx0, tx1, ty0, ty1) = grid.tile_range(Vec2::new(-50.0, 300.0), Vec2::splat(10.0));
        assert!(tx0 <= tx1 && tx1 <= grid.tiles_x());
        assert!(ty0 <= ty1 && ty1 <= grid.tiles_y());
    }

    #[test]
    fn small_central_splat_lands_in_one_tile() {
        let grid = TileGrid::new(128, 128, 16);
        let mut counts = StageCounts::new();
        let splats = vec![projected(Vec2::new(24.0, 24.0), 1.0)];
        let assignments = identify_tiles(&splats, grid, BoundaryMethod::Ellipse, &mut counts);
        assert_eq!(assignments.tiles_per_gaussian()[0], 1);
        assert_eq!(assignments.tile(grid.tile_index(1, 1)), &[0]);
        assert_eq!(counts.tile_intersections, 1);
    }

    #[test]
    fn large_splat_covers_multiple_tiles() {
        let grid = TileGrid::new(128, 128, 16);
        let mut counts = StageCounts::new();
        let splats = vec![projected(Vec2::new(64.0, 64.0), 10.0)]; // 3σ = 30 px
        let assignments = identify_tiles(&splats, grid, BoundaryMethod::Aabb, &mut counts);
        assert!(assignments.tiles_per_gaussian()[0] >= 9);
        assert!(counts.tile_tests >= counts.tile_intersections);
    }

    #[test]
    fn smaller_tiles_mean_more_intersections_per_gaussian() {
        // The Fig. 5 effect: the same splats intersect more tiles when the
        // tile size shrinks.
        let splats: Vec<ProjectedGaussian> = (0..20)
            .map(|i| projected(Vec2::new(20.0 + 8.0 * i as f32, 100.0), 6.0))
            .collect();
        let mut tiles_small = StageCounts::new();
        let mut tiles_large = StageCounts::new();
        let small = identify_tiles(
            &splats,
            TileGrid::new(256, 256, 8),
            BoundaryMethod::Aabb,
            &mut tiles_small,
        );
        let large = identify_tiles(
            &splats,
            TileGrid::new(256, 256, 64),
            BoundaryMethod::Aabb,
            &mut tiles_large,
        );
        assert!(small.mean_tiles_per_gaussian() > large.mean_tiles_per_gaussian());
    }

    #[test]
    fn shared_fraction_counts_multi_tile_splats() {
        let grid = TileGrid::new(64, 64, 16);
        let mut counts = StageCounts::new();
        // One splat inside a single tile, one spanning several.
        let splats = vec![
            projected(Vec2::new(8.0, 8.0), 0.5),
            projected(Vec2::new(32.0, 32.0), 8.0),
        ];
        let assignments = identify_tiles(&splats, grid, BoundaryMethod::Ellipse, &mut counts);
        assert!((assignments.shared_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_entries_counts_tile_gaussian_pairs() {
        let grid = TileGrid::new(64, 64, 16);
        let mut counts = StageCounts::new();
        let splats = vec![projected(Vec2::new(32.0, 32.0), 8.0)];
        let assignments = identify_tiles(&splats, grid, BoundaryMethod::Aabb, &mut counts);
        assert_eq!(assignments.total_entries(), counts.tile_intersections);
        assert_eq!(
            assignments.total_entries(),
            u64::from(assignments.tiles_per_gaussian()[0])
        );
    }

    #[test]
    fn tighter_boundary_methods_assign_fewer_tiles() {
        let grid = TileGrid::new(256, 256, 16);
        // Anisotropic splat: build covariance rotated 45°.
        let a2 = 100.0f32;
        let b2 = 4.0f32;
        let cov = Mat2::from_symmetric(0.5 * (a2 + b2), 0.5 * (a2 - b2), 0.5 * (a2 + b2));
        let splat = ProjectedGaussian {
            index: 0,
            depth: 1.0,
            mean: Vec2::new(128.0, 128.0),
            cov,
            inv_cov: cov.inverse().unwrap(),
            opacity: 0.9,
            color: Rgb::WHITE,
        };
        let count_for = |method| {
            let mut counts = StageCounts::new();
            identify_tiles(std::slice::from_ref(&splat), grid, method, &mut counts)
                .tiles_per_gaussian()[0]
        };
        let aabb = count_for(BoundaryMethod::Aabb);
        let obb = count_for(BoundaryMethod::Obb);
        let ellipse = count_for(BoundaryMethod::Ellipse);
        assert!(aabb >= obb && obb >= ellipse);
        assert!(aabb > ellipse, "aabb {aabb} vs ellipse {ellipse}");
    }

    #[test]
    #[should_panic(expected = "tile size must be non-zero")]
    fn zero_tile_size_panics() {
        let _ = TileGrid::new(64, 64, 0);
    }

    #[test]
    fn try_new_returns_typed_errors_instead_of_panicking() {
        assert_eq!(
            TileGrid::try_new(64, 64, 0),
            Err(RenderError::InvalidTileSize { tile_size: 0 })
        );
        assert_eq!(
            TileGrid::try_new(0, 64, 16),
            Err(RenderError::InvalidResolution {
                width: 0,
                height: 64
            })
        );
        assert_eq!(
            TileGrid::try_new(64, 0, 16),
            Err(RenderError::InvalidResolution {
                width: 64,
                height: 0
            })
        );
        assert_eq!(TileGrid::try_new(64, 64, 16), Ok(TileGrid::new(64, 64, 16)));
    }

    /// An anisotropic splat population whose AABB candidate rects contain
    /// plenty of exact-test false positives.
    fn anisotropic_splats() -> Vec<ProjectedGaussian> {
        (0..12)
            .map(|i| {
                let a2 = 120.0f32 + 5.0 * i as f32;
                let b2 = 3.0f32;
                let cov = Mat2::from_symmetric(0.5 * (a2 + b2), 0.5 * (a2 - b2), 0.5 * (a2 + b2));
                ProjectedGaussian {
                    index: i,
                    depth: 1.0 + i as f32,
                    mean: Vec2::new(40.0 + 15.0 * i as f32, 30.0 + 11.0 * i as f32),
                    cov,
                    inv_cov: cov.inverse().unwrap(),
                    opacity: 0.9,
                    color: Rgb::WHITE,
                }
            })
            .collect()
    }

    #[test]
    fn exact_prepass_tile_sets_are_subsets_of_conservative_ones() {
        let grid = TileGrid::new(256, 256, 16);
        let splats = anisotropic_splats();
        let mut conservative_counts = StageCounts::new();
        let conservative = identify_tiles(
            &splats,
            grid,
            BoundaryMethod::Aabb,
            &mut conservative_counts,
        );
        let mut exact_counts = StageCounts::new();
        let exact = identify_tiles_with(
            &splats,
            grid,
            BoundaryMethod::Aabb,
            PrepassMode::Exact,
            &mut exact_counts,
        );

        for (tile, exact_list) in exact.iter() {
            let conservative_list = conservative.tile(tile);
            for slot in exact_list {
                assert!(
                    conservative_list.contains(slot),
                    "tile {tile}: exact accepted slot {slot} the conservative pass did not"
                );
            }
        }
        assert!(
            exact_counts.tile_intersections < conservative_counts.tile_intersections,
            "exact mode must trim overcount on anisotropic splats"
        );
        assert_eq!(
            exact_counts.prepass_overcount_trimmed,
            conservative_counts.tile_intersections - exact_counts.tile_intersections
        );
    }

    #[test]
    fn prepass_counters_reconcile_in_both_modes() {
        let grid = TileGrid::new(256, 256, 16);
        let splats = anisotropic_splats();
        for prepass in PrepassMode::ALL {
            let mut counts = StageCounts::new();
            let assignments =
                identify_tiles_with(&splats, grid, BoundaryMethod::Aabb, prepass, &mut counts);
            assert_eq!(counts.tiles_hit, counts.tile_intersections);
            assert_eq!(counts.tiles_hit, assignments.total_entries());
            assert!(counts.tiles_hit <= counts.tiles_tested);
            match prepass {
                PrepassMode::Conservative => {
                    assert_eq!(counts.tiles_tested, counts.tile_tests);
                    assert_eq!(counts.prepass_overcount_trimmed, 0);
                }
                PrepassMode::Exact => {
                    assert!(counts.tiles_tested > counts.tile_tests);
                    assert!(counts.prepass_overcount_trimmed > 0);
                }
            }
        }
    }

    #[test]
    fn exact_prepass_with_ellipse_boundary_changes_nothing() {
        // The ellipse boundary is already exact, so exact mode must not
        // re-test (or trim) anything.
        let grid = TileGrid::new(256, 256, 16);
        let splats = anisotropic_splats();
        let mut conservative_counts = StageCounts::new();
        let conservative = identify_tiles(
            &splats,
            grid,
            BoundaryMethod::Ellipse,
            &mut conservative_counts,
        );
        let mut exact_counts = StageCounts::new();
        let exact = identify_tiles_with(
            &splats,
            grid,
            BoundaryMethod::Ellipse,
            PrepassMode::Exact,
            &mut exact_counts,
        );
        assert_eq!(exact, conservative);
        assert_eq!(exact_counts, conservative_counts);
        // And exact-trimmed AABB agrees with the ellipse boundary's sets.
        let mut trimmed_counts = StageCounts::new();
        let trimmed = identify_tiles_with(
            &splats,
            grid,
            BoundaryMethod::Aabb,
            PrepassMode::Exact,
            &mut trimmed_counts,
        );
        assert_eq!(
            trimmed_counts.tile_intersections,
            conservative_counts.tile_intersections
        );
        for (tile, list) in trimmed.iter() {
            assert_eq!(list, conservative.tile(tile), "tile {tile}");
        }
    }

    #[test]
    fn in_place_identification_matches_fresh_and_reuses_capacity() {
        let grid = TileGrid::new(128, 128, 16);
        let splats: Vec<ProjectedGaussian> = (0..10)
            .map(|i| projected(Vec2::new(10.0 + 11.0 * i as f32, 64.0), 5.0))
            .collect();
        let mut fresh_counts = StageCounts::new();
        let fresh = identify_tiles(&splats, grid, BoundaryMethod::Aabb, &mut fresh_counts);

        let mut scratch = CsrScratch::new();
        let mut reused = TileAssignments::empty();
        for _ in 0..3 {
            let mut counts = StageCounts::new();
            identify_tiles_into(
                &splats,
                grid,
                BoundaryMethod::Aabb,
                PrepassMode::Conservative,
                &mut counts,
                &mut scratch,
                &mut reused,
            );
            assert_eq!(reused, fresh);
            assert_eq!(counts, fresh_counts);
        }
        let footprint = reused.footprint_bytes() + scratch.footprint_bytes();
        let mut counts = StageCounts::new();
        identify_tiles_into(
            &splats,
            grid,
            BoundaryMethod::Aabb,
            PrepassMode::Conservative,
            &mut counts,
            &mut scratch,
            &mut reused,
        );
        assert_eq!(
            reused.footprint_bytes() + scratch.footprint_bytes(),
            footprint,
            "steady-state rebuild must not grow the buffers"
        );
    }
}
