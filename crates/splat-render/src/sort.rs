//! Tile-wise depth sorting.
//!
//! Every tile's splat list is sorted front-to-back by depth. The paper's
//! central observation is that this work is *duplicated* across tiles:
//! a splat covering `k` tiles is sorted `k` times. Sorting itself is the
//! shared order-preserving radix key sort on
//! `(depth_bits << 32) | scene_index` ([`splat_core::keysort`]): the same
//! ordering the old comparison sort produced (depth, ties by scene index),
//! so the lossless-equivalence guarantees are unchanged, while
//! `StageCounts` records both the measured key-sort work (`sort_keys`,
//! `radix_passes`) and the modeled comparison count the paper's redundancy
//! figures are expressed in.

use crate::preprocess::ProjectedGaussian;
use crate::stats::StageCounts;
use crate::tiling::TileAssignments;
use splat_core::{splat_key, KeySortRun, KeySortScratch};

/// Sorts one splat list front-to-back by depth, breaking ties by original
/// scene order so that results are deterministic and identical between the
/// baseline and the GS-TG pipeline.
///
/// Returns the modeled merge-sort comparison count for the list (the key
/// sort itself performs none); use [`sort_by_depth_with`] to reuse sort
/// buffers and obtain the full [`KeySortRun`].
pub fn sort_by_depth(list: &mut [u32], projected: &[ProjectedGaussian]) -> u64 {
    let mut scratch = KeySortScratch::new();
    sort_by_depth_with(list, projected, &mut scratch).modeled_comparisons
}

/// Sorts one splat list front-to-back through a reusable key-sort scratch.
/// Depths are finite by the preprocessing contract, so the sign-flip key
/// mapping reproduces the comparator order exactly.
pub fn sort_by_depth_with(
    list: &mut [u32],
    projected: &[ProjectedGaussian],
    scratch: &mut KeySortScratch<u32>,
) -> KeySortRun {
    scratch.sort_by_key(list, |&slot| {
        let splat = &projected[slot as usize];
        splat_key(splat.depth, splat.index)
    })
}

/// Sorts every tile's splat list in place, accumulating the modeled
/// comparison count and the measured key-sort counters into `counts`.
pub fn sort_tiles(
    assignments: &mut TileAssignments,
    projected: &[ProjectedGaussian],
    counts: &mut StageCounts,
) {
    let mut scratch = KeySortScratch::new();
    sort_tiles_with(assignments, projected, counts, &mut scratch);
}

/// In-place variant of [`sort_tiles`] reusing the session's sort scratch.
pub fn sort_tiles_with(
    assignments: &mut TileAssignments,
    projected: &[ProjectedGaussian],
    counts: &mut StageCounts,
    scratch: &mut KeySortScratch<u32>,
) {
    for tile in 0..assignments.grid().tile_count() {
        let list = assignments.tile_mut(tile);
        if list.len() > 1 {
            sort_by_depth_with(list, projected, scratch).accumulate(counts);
        }
    }
}

/// Returns `true` when a splat list is sorted front-to-back (by depth, ties
/// by index). Used by tests and by the lossless-equivalence checker.
pub fn is_sorted_by_depth(list: &[u32], projected: &[ProjectedGaussian]) -> bool {
    list.windows(2).all(|w| {
        let a = &projected[w[0] as usize];
        let b = &projected[w[1] as usize];
        a.depth < b.depth || (a.depth == b.depth && a.index <= b.index)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryMethod;
    use crate::tiling::{identify_tiles, TileGrid};
    use splat_types::{Mat2, Rgb, Vec2};

    fn projected_at(index: u32, depth: f32) -> ProjectedGaussian {
        let cov = Mat2::from_symmetric(4.0, 0.0, 4.0);
        ProjectedGaussian {
            index,
            depth,
            mean: Vec2::new(32.0, 32.0),
            cov,
            inv_cov: cov.inverse().unwrap(),
            opacity: 0.9,
            color: Rgb::WHITE,
        }
    }

    #[test]
    fn sorts_front_to_back() {
        let projected = vec![
            projected_at(0, 5.0),
            projected_at(1, 1.0),
            projected_at(2, 3.0),
        ];
        let mut list = vec![0u32, 1, 2];
        let comparisons = sort_by_depth(&mut list, &projected);
        assert_eq!(list, vec![1, 2, 0]);
        assert!(comparisons >= 2);
        assert!(is_sorted_by_depth(&list, &projected));
    }

    #[test]
    fn equal_depths_break_ties_by_index() {
        let projected = vec![
            projected_at(7, 2.0),
            projected_at(3, 2.0),
            projected_at(5, 2.0),
        ];
        let mut list = vec![0u32, 1, 2];
        sort_by_depth(&mut list, &projected);
        // Slots reordered so that original indices ascend: 3 (slot 1),
        // 5 (slot 2), 7 (slot 0).
        assert_eq!(list, vec![1, 2, 0]);
    }

    #[test]
    fn empty_and_single_lists_cost_nothing() {
        let projected = vec![projected_at(0, 1.0)];
        let mut empty: Vec<u32> = vec![];
        assert_eq!(sort_by_depth(&mut empty, &projected), 0);
        let mut single = vec![0u32];
        assert_eq!(sort_by_depth(&mut single, &projected), 0);
    }

    #[test]
    fn sort_tiles_accumulates_comparisons() {
        let projected: Vec<ProjectedGaussian> =
            (0..8).map(|i| projected_at(i, (8 - i) as f32)).collect();
        let grid = TileGrid::new(64, 64, 16);
        let mut counts = StageCounts::new();
        let mut assignments = identify_tiles(&projected, grid, BoundaryMethod::Aabb, &mut counts);
        sort_tiles(&mut assignments, &projected, &mut counts);
        assert!(counts.sort_comparisons > 0);
        for (_, list) in assignments.iter() {
            assert!(is_sorted_by_depth(list, &projected));
        }
    }

    #[test]
    fn key_sort_matches_the_comparator_sort_bit_exactly() {
        // The radix key sort must reproduce the order of the stable
        // comparison sort it replaced: depth ascending, ties by scene
        // index. Sweep deterministic pseudo-random depth sets, including
        // duplicated depths.
        let mut rng = splat_types::rng::Rng::seed_from_u64(42);
        for case in 0..50u32 {
            let len = 2 + (case % 23) as usize;
            let projected: Vec<ProjectedGaussian> = (0..len)
                .map(|i| projected_at(i as u32 * 3 + 1, rng.range_f64(0.1, 8.0) as f32))
                .collect();
            let mut by_key: Vec<u32> = (0..len as u32).rev().collect();
            let mut by_comparator = by_key.clone();
            sort_by_depth(&mut by_key, &projected);
            by_comparator.sort_by(|&a, &b| {
                let ga = &projected[a as usize];
                let gb = &projected[b as usize];
                ga.depth
                    .partial_cmp(&gb.depth)
                    .unwrap()
                    .then(ga.index.cmp(&gb.index))
            });
            assert_eq!(by_key, by_comparator, "case {case}");
        }
    }

    #[test]
    fn sort_tiles_records_key_sort_counters() {
        let projected: Vec<ProjectedGaussian> =
            (0..8).map(|i| projected_at(i, (8 - i) as f32)).collect();
        let grid = TileGrid::new(64, 64, 16);
        let mut counts = StageCounts::new();
        let mut assignments = identify_tiles(&projected, grid, BoundaryMethod::Aabb, &mut counts);
        sort_tiles(&mut assignments, &projected, &mut counts);
        assert!(counts.sort_keys > 0);
        assert!(counts.radix_passes > 0);
        // Every sorted key belongs to a multi-entry list, so the key count
        // never exceeds the total number of (tile, splat) pairs.
        assert!(counts.sort_keys <= assignments.total_entries());
    }

    #[test]
    fn redundant_sorting_grows_with_tile_coverage() {
        // The same splats identified on a finer grid generate strictly more
        // sorting work (the paper's core observation).
        let projected: Vec<ProjectedGaussian> =
            (0..16).map(|i| projected_at(i, 1.0 + i as f32)).collect();
        let mut small_counts = StageCounts::new();
        let mut large_counts = StageCounts::new();
        let mut small = identify_tiles(
            &projected,
            TileGrid::new(128, 128, 8),
            BoundaryMethod::Aabb,
            &mut small_counts,
        );
        let mut large = identify_tiles(
            &projected,
            TileGrid::new(128, 128, 64),
            BoundaryMethod::Aabb,
            &mut large_counts,
        );
        sort_tiles(&mut small, &projected, &mut small_counts);
        sort_tiles(&mut large, &projected, &mut large_counts);
        assert!(small_counts.sort_comparisons > large_counts.sort_comparisons);
    }
}
