//! Tile-wise depth sorting.
//!
//! Every tile's splat list is sorted front-to-back by depth. The paper's
//! central observation is that this work is *duplicated* across tiles:
//! a splat covering `k` tiles is sorted `k` times. The functions here count
//! the comparison operations actually performed so experiments can measure
//! that redundancy directly.

use crate::preprocess::ProjectedGaussian;
use crate::stats::StageCounts;
use crate::tiling::TileAssignments;

/// Sorts one splat list front-to-back by depth, breaking ties by original
/// scene order so that results are deterministic and identical between the
/// baseline and the GS-TG pipeline.
///
/// Returns the number of comparisons performed (a merge-sort style
/// `n·log₂(n)` bound counted explicitly).
pub fn sort_by_depth(list: &mut [u32], projected: &[ProjectedGaussian]) -> u64 {
    let mut comparisons = 0u64;
    // `sort_by` in std is a stable adaptive merge sort; count comparisons
    // through the comparator to charge exactly the work performed.
    list.sort_by(|&a, &b| {
        comparisons += 1;
        let ga = &projected[a as usize];
        let gb = &projected[b as usize];
        ga.depth
            .partial_cmp(&gb.depth)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ga.index.cmp(&gb.index))
    });
    comparisons
}

/// Sorts every tile's splat list in place, accumulating the comparison
/// count into `counts.sort_comparisons`.
pub fn sort_tiles(
    assignments: &mut TileAssignments,
    projected: &[ProjectedGaussian],
    counts: &mut StageCounts,
) {
    for tile in 0..assignments.grid().tile_count() {
        let list = assignments.tile_mut(tile);
        if list.len() > 1 {
            counts.sort_comparisons += sort_by_depth(list, projected);
        }
    }
}

/// Returns `true` when a splat list is sorted front-to-back (by depth, ties
/// by index). Used by tests and by the lossless-equivalence checker.
pub fn is_sorted_by_depth(list: &[u32], projected: &[ProjectedGaussian]) -> bool {
    list.windows(2).all(|w| {
        let a = &projected[w[0] as usize];
        let b = &projected[w[1] as usize];
        a.depth < b.depth || (a.depth == b.depth && a.index <= b.index)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryMethod;
    use crate::tiling::{identify_tiles, TileGrid};
    use splat_types::{Mat2, Rgb, Vec2};

    fn projected_at(index: u32, depth: f32) -> ProjectedGaussian {
        let cov = Mat2::from_symmetric(4.0, 0.0, 4.0);
        ProjectedGaussian {
            index,
            depth,
            mean: Vec2::new(32.0, 32.0),
            cov,
            inv_cov: cov.inverse().unwrap(),
            opacity: 0.9,
            color: Rgb::WHITE,
        }
    }

    #[test]
    fn sorts_front_to_back() {
        let projected = vec![
            projected_at(0, 5.0),
            projected_at(1, 1.0),
            projected_at(2, 3.0),
        ];
        let mut list = vec![0u32, 1, 2];
        let comparisons = sort_by_depth(&mut list, &projected);
        assert_eq!(list, vec![1, 2, 0]);
        assert!(comparisons >= 2);
        assert!(is_sorted_by_depth(&list, &projected));
    }

    #[test]
    fn equal_depths_break_ties_by_index() {
        let projected = vec![
            projected_at(7, 2.0),
            projected_at(3, 2.0),
            projected_at(5, 2.0),
        ];
        let mut list = vec![0u32, 1, 2];
        sort_by_depth(&mut list, &projected);
        // Slots reordered so that original indices ascend: 3 (slot 1),
        // 5 (slot 2), 7 (slot 0).
        assert_eq!(list, vec![1, 2, 0]);
    }

    #[test]
    fn empty_and_single_lists_cost_nothing() {
        let projected = vec![projected_at(0, 1.0)];
        let mut empty: Vec<u32> = vec![];
        assert_eq!(sort_by_depth(&mut empty, &projected), 0);
        let mut single = vec![0u32];
        assert_eq!(sort_by_depth(&mut single, &projected), 0);
    }

    #[test]
    fn sort_tiles_accumulates_comparisons() {
        let projected: Vec<ProjectedGaussian> =
            (0..8).map(|i| projected_at(i, (8 - i) as f32)).collect();
        let grid = TileGrid::new(64, 64, 16);
        let mut counts = StageCounts::new();
        let mut assignments = identify_tiles(&projected, grid, BoundaryMethod::Aabb, &mut counts);
        sort_tiles(&mut assignments, &projected, &mut counts);
        assert!(counts.sort_comparisons > 0);
        for (_, list) in assignments.iter() {
            assert!(is_sorted_by_depth(list, &projected));
        }
    }

    #[test]
    fn redundant_sorting_grows_with_tile_coverage() {
        // The same splats identified on a finer grid generate strictly more
        // sorting work (the paper's core observation).
        let projected: Vec<ProjectedGaussian> =
            (0..16).map(|i| projected_at(i, 1.0 + i as f32)).collect();
        let mut small_counts = StageCounts::new();
        let mut large_counts = StageCounts::new();
        let mut small = identify_tiles(
            &projected,
            TileGrid::new(128, 128, 8),
            BoundaryMethod::Aabb,
            &mut small_counts,
        );
        let mut large = identify_tiles(
            &projected,
            TileGrid::new(128, 128, 64),
            BoundaryMethod::Aabb,
            &mut large_counts,
        );
        sort_tiles(&mut small, &projected, &mut small_counts);
        sort_tiles(&mut large, &projected, &mut large_counts);
        assert!(small_counts.sort_comparisons > large_counts.sort_comparisons);
    }
}
