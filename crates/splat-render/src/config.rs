//! Rendering configuration: tile size, boundary method and thresholds.

pub use splat_core::{ALPHA_CULL_THRESHOLD, ALPHA_MAX, TRANSMITTANCE_EPSILON};

use splat_core::{ExecutionConfig, HasExecution};
use splat_types::Precision;

/// How the screen-space footprint of a splat is tested against tiles during
/// tile/group identification (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundaryMethod {
    /// Axis-aligned bounding box of the 3σ ellipse — cheapest test, most
    /// false positives (original 3D-GS).
    #[default]
    Aabb,
    /// Oriented bounding box aligned with the ellipse axes — moderate cost,
    /// fewer false positives (GSCore).
    Obb,
    /// Exact ellipse/rectangle intersection — most expensive test, minimal
    /// false positives (FlashGS).
    Ellipse,
}

impl BoundaryMethod {
    /// All boundary methods in the order the paper presents them.
    pub const ALL: [BoundaryMethod; 3] = [
        BoundaryMethod::Aabb,
        BoundaryMethod::Obb,
        BoundaryMethod::Ellipse,
    ];

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BoundaryMethod::Aabb => "AABB",
            BoundaryMethod::Obb => "OBB",
            BoundaryMethod::Ellipse => "Ellipse",
        }
    }

    /// Relative cost of one tile-intersection test with this method, in
    /// arbitrary "operation" units used by the cost model. AABB needs only
    /// range comparisons, OBB runs a separating-axis test, the ellipse test
    /// evaluates the quadratic form against the rectangle.
    pub fn test_cost(self) -> f64 {
        match self {
            BoundaryMethod::Aabb => 1.0,
            BoundaryMethod::Obb => 2.5,
            BoundaryMethod::Ellipse => 4.0,
        }
    }
}

impl std::fmt::Display for BoundaryMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of the baseline rendering pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Square tile edge length in pixels (8, 16, 32 or 64 in the paper's
    /// sweeps; any power of two ≥ 4 is accepted).
    pub tile_size: u32,
    /// Boundary method used in tile identification.
    pub boundary: BoundaryMethod,
    /// Storage precision applied to the splat parameters before rendering.
    pub precision: Precision,
    /// Shared execution parameters (worker threads, scheduling model).
    /// Use [`HasExecution::with_threads`] to change the thread count.
    pub exec: ExecutionConfig,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: 16,
            boundary: BoundaryMethod::Aabb,
            precision: Precision::Full,
            exec: ExecutionConfig::sequential(),
        }
    }
}

impl RenderConfig {
    /// Creates a configuration with the given tile size and boundary
    /// method and default thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is not a power of two or is below 4; use
    /// [`RenderConfig::try_new`] for a fallible variant.
    pub fn new(tile_size: u32, boundary: BoundaryMethod) -> Self {
        Self::try_new(tile_size, boundary).expect("invalid tile size")
    }

    /// Fallible variant of [`RenderConfig::new`].
    ///
    /// # Errors
    ///
    /// Returns an error message when `tile_size` is not a power of two or
    /// is smaller than 4 pixels.
    pub fn try_new(tile_size: u32, boundary: BoundaryMethod) -> Result<Self, String> {
        if tile_size < 4 || !tile_size.is_power_of_two() {
            return Err(format!(
                "tile size must be a power of two >= 4, got {tile_size}"
            ));
        }
        Ok(Self {
            tile_size,
            boundary,
            ..Self::default()
        })
    }

    /// Returns a copy with the storage precision replaced.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

impl HasExecution for RenderConfig {
    fn execution(&self) -> &ExecutionConfig {
        &self.exec
    }

    fn execution_mut(&mut self) -> &mut ExecutionConfig {
        &mut self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_reference_settings() {
        let c = RenderConfig::default();
        assert_eq!(c.tile_size, 16);
        assert_eq!(c.boundary, BoundaryMethod::Aabb);
        assert_eq!(c.exec.threads, 1);
    }

    #[test]
    fn thresholds_match_reference_implementation() {
        assert!((ALPHA_CULL_THRESHOLD - 1.0 / 255.0).abs() < 1e-9);
        assert!((TRANSMITTANCE_EPSILON - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn try_new_rejects_bad_tile_sizes() {
        assert!(RenderConfig::try_new(0, BoundaryMethod::Aabb).is_err());
        assert!(RenderConfig::try_new(3, BoundaryMethod::Aabb).is_err());
        assert!(RenderConfig::try_new(20, BoundaryMethod::Aabb).is_err());
        assert!(RenderConfig::try_new(2, BoundaryMethod::Aabb).is_err());
    }

    #[test]
    fn try_new_accepts_paper_tile_sizes() {
        for size in [8, 16, 32, 64] {
            assert!(RenderConfig::try_new(size, BoundaryMethod::Ellipse).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "invalid tile size")]
    fn new_panics_on_bad_tile_size() {
        let _ = RenderConfig::new(7, BoundaryMethod::Aabb);
    }

    #[test]
    fn boundary_cost_ordering_matches_paper() {
        // AABB cheapest, ellipse most expensive (Section II-C).
        assert!(BoundaryMethod::Aabb.test_cost() < BoundaryMethod::Obb.test_cost());
        assert!(BoundaryMethod::Obb.test_cost() < BoundaryMethod::Ellipse.test_cost());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BoundaryMethod::Aabb.to_string(), "AABB");
        assert_eq!(BoundaryMethod::Obb.to_string(), "OBB");
        assert_eq!(BoundaryMethod::Ellipse.to_string(), "Ellipse");
    }

    #[test]
    fn shared_thread_knob_clamps_to_one() {
        assert_eq!(RenderConfig::default().with_threads(0).exec.threads, 1);
        assert_eq!(RenderConfig::default().with_threads(4).exec.threads, 4);
    }
}
