//! Rendering configuration: tile size, boundary method and thresholds.

pub use splat_core::{ALPHA_CULL_THRESHOLD, ALPHA_MAX, TRANSMITTANCE_EPSILON};

use splat_core::{ExecutionConfig, HasExecution};
use splat_types::{Precision, RenderError};

/// How the screen-space footprint of a splat is tested against tiles during
/// tile/group identification (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundaryMethod {
    /// Axis-aligned bounding box of the 3σ ellipse — cheapest test, most
    /// false positives (original 3D-GS).
    #[default]
    Aabb,
    /// Oriented bounding box aligned with the ellipse axes — moderate cost,
    /// fewer false positives (GSCore).
    Obb,
    /// Exact ellipse/rectangle intersection — most expensive test, minimal
    /// false positives (FlashGS).
    Ellipse,
}

impl BoundaryMethod {
    /// All boundary methods in the order the paper presents them.
    pub const ALL: [BoundaryMethod; 3] = [
        BoundaryMethod::Aabb,
        BoundaryMethod::Obb,
        BoundaryMethod::Ellipse,
    ];

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BoundaryMethod::Aabb => "AABB",
            BoundaryMethod::Obb => "OBB",
            BoundaryMethod::Ellipse => "Ellipse",
        }
    }

    /// Relative cost of one tile-intersection test with this method, in
    /// arbitrary "operation" units used by the cost model. AABB needs only
    /// range comparisons, OBB runs a separating-axis test, the ellipse test
    /// evaluates the quadratic form against the rectangle.
    pub fn test_cost(self) -> f64 {
        match self {
            BoundaryMethod::Aabb => 1.0,
            BoundaryMethod::Obb => 2.5,
            BoundaryMethod::Ellipse => 4.0,
        }
    }
}

impl std::fmt::Display for BoundaryMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How far the tile-intersection prepass refines the candidate set before
/// handing it to sorting and rasterization.
///
/// Because the blending kernel defines contributions outside the 3σ
/// Mahalanobis cutoff to be exactly zero, trimming conservatively-accepted
/// tiles with the exact ellipse-vs-tile test never changes a pixel — it
/// only removes sort keys and α-computations that were guaranteed to be
/// wasted. The modes therefore render bit-identical images; only the
/// [`StageCounts`](splat_core::StageCounts) work accounting differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrepassMode {
    /// Keep every candidate the configured boundary method accepts (the
    /// reference behavior, and the historical work accounting).
    #[default]
    Conservative,
    /// After the configured boundary test accepts a candidate, re-test it
    /// with the exact ellipse-vs-tile intersection and drop false
    /// positives. Trimmed candidates are charged to
    /// `prepass_overcount_trimmed`.
    Exact,
}

impl PrepassMode {
    /// Both modes, conservative first.
    pub const ALL: [PrepassMode; 2] = [PrepassMode::Conservative, PrepassMode::Exact];

    /// Stable human-readable label (used by benches and reports).
    pub fn label(self) -> &'static str {
        match self {
            PrepassMode::Conservative => "conservative",
            PrepassMode::Exact => "exact",
        }
    }
}

/// Full configuration of the baseline rendering pipeline.
///
/// The struct is `#[non_exhaustive]`: construct it through
/// [`RenderConfig::default`], [`RenderConfig::new`] /
/// [`RenderConfig::try_new`] or [`RenderConfig::builder`], so future knobs
/// can be added without breaking callers. The fields stay public for
/// reading and in-place adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RenderConfig {
    /// Square tile edge length in pixels (8, 16, 32 or 64 in the paper's
    /// sweeps; any power of two ≥ 4 is accepted).
    pub tile_size: u32,
    /// Boundary method used in tile identification.
    pub boundary: BoundaryMethod,
    /// Refinement level of the tile-intersection prepass. Exact mode trims
    /// conservative overcount without changing any pixel.
    pub prepass: PrepassMode,
    /// Storage precision applied to the splat parameters before rendering.
    pub precision: Precision,
    /// Shared execution parameters (worker threads, scheduling model).
    /// Use [`HasExecution::with_threads`] to change the thread count.
    pub exec: ExecutionConfig,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            tile_size: 16,
            boundary: BoundaryMethod::Aabb,
            prepass: PrepassMode::Conservative,
            precision: Precision::Full,
            exec: ExecutionConfig::sequential(),
        }
    }
}

impl RenderConfig {
    /// Creates a configuration with the given tile size and boundary
    /// method and default thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is not a power of two or is below 4; use
    /// [`RenderConfig::try_new`] for a fallible variant.
    pub fn new(tile_size: u32, boundary: BoundaryMethod) -> Self {
        // lint:allow(no-panic-paths): documented panicking constructor; try_new is the typed path
        Self::try_new(tile_size, boundary).expect("invalid tile size")
    }

    /// Fallible variant of [`RenderConfig::new`].
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidTileSize`] when `tile_size` is not a
    /// power of two or is smaller than 4 pixels.
    pub fn try_new(tile_size: u32, boundary: BoundaryMethod) -> Result<Self, RenderError> {
        let config = Self {
            tile_size,
            boundary,
            ..Self::default()
        };
        config.validate()?;
        Ok(config)
    }

    /// Starts a builder from the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use splat_render::{BoundaryMethod, RenderConfig};
    ///
    /// let config = RenderConfig::builder()
    ///     .tile_size(32)
    ///     .boundary(BoundaryMethod::Ellipse)
    ///     .threads(4)
    ///     .build()?;
    /// assert_eq!(config.tile_size, 32);
    /// # Ok::<(), splat_types::RenderError>(())
    /// ```
    pub fn builder() -> RenderConfigBuilder {
        RenderConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates the configuration. Because the fields are public (and the
    /// convenience constructors panic rather than return errors), the
    /// panic-free serving path re-checks configurations through this
    /// method before rendering.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidTileSize`] when the tile size is not a
    /// power of two of at least 4 pixels (zero included).
    pub fn validate(&self) -> Result<(), RenderError> {
        if self.tile_size < 4 || !self.tile_size.is_power_of_two() {
            return Err(RenderError::InvalidTileSize {
                tile_size: self.tile_size,
            });
        }
        Ok(())
    }

    /// Returns a copy with the storage precision replaced.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns a copy with the prepass refinement mode replaced.
    pub fn with_prepass(mut self, prepass: PrepassMode) -> Self {
        self.prepass = prepass;
        self
    }
}

/// Builder for [`RenderConfig`] (see [`RenderConfig::builder`]).
#[derive(Debug, Clone, Copy)]
pub struct RenderConfigBuilder {
    config: RenderConfig,
}

impl RenderConfigBuilder {
    /// Sets the square tile edge length in pixels.
    pub fn tile_size(mut self, tile_size: u32) -> Self {
        self.config.tile_size = tile_size;
        self
    }

    /// Sets the boundary method used in tile identification.
    pub fn boundary(mut self, boundary: BoundaryMethod) -> Self {
        self.config.boundary = boundary;
        self
    }

    /// Sets the storage precision applied to splat parameters.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Sets the prepass refinement mode.
    pub fn prepass(mut self, prepass: PrepassMode) -> Self {
        self.config.prepass = prepass;
        self
    }

    /// Sets the pixel coverage strategy of the blending loop.
    pub fn span(mut self, span: splat_core::SpanMode) -> Self {
        self.config = self.config.with_span(span);
        self
    }

    /// Sets the worker thread count (clamped to at least one).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }

    /// Replaces the whole execution configuration.
    pub fn execution(mut self, exec: ExecutionConfig) -> Self {
        self.config.exec = exec;
        self
    }

    /// Validates and finishes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RenderError::InvalidTileSize`] when the tile size is
    /// invalid (see [`RenderConfig::validate`]).
    pub fn build(self) -> Result<RenderConfig, RenderError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl HasExecution for RenderConfig {
    fn execution(&self) -> &ExecutionConfig {
        &self.exec
    }

    fn execution_mut(&mut self) -> &mut ExecutionConfig {
        &mut self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_reference_settings() {
        let c = RenderConfig::default();
        assert_eq!(c.tile_size, 16);
        assert_eq!(c.boundary, BoundaryMethod::Aabb);
        assert_eq!(c.prepass, PrepassMode::Conservative);
        assert_eq!(c.exec.threads, 1);
    }

    #[test]
    fn prepass_knob_is_settable_through_builder_and_with() {
        let built = RenderConfig::builder()
            .prepass(PrepassMode::Exact)
            .build()
            .expect("valid configuration");
        assert_eq!(built.prepass, PrepassMode::Exact);
        assert_eq!(
            RenderConfig::default()
                .with_prepass(PrepassMode::Exact)
                .prepass,
            PrepassMode::Exact
        );
        assert_eq!(
            PrepassMode::ALL.map(PrepassMode::label),
            ["conservative", "exact"]
        );
    }

    #[test]
    fn span_knob_is_settable_through_builder_and_with() {
        use splat_core::SpanMode;
        let built = RenderConfig::builder()
            .span(SpanMode::RowSpans)
            .build()
            .expect("valid configuration");
        assert_eq!(built.span(), SpanMode::RowSpans);
        assert_eq!(
            RenderConfig::default().with_span(SpanMode::RowSpans).span(),
            SpanMode::RowSpans
        );
        assert_eq!(RenderConfig::default().span(), SpanMode::Full);
    }

    #[test]
    fn thresholds_match_reference_implementation() {
        assert!((ALPHA_CULL_THRESHOLD - 1.0 / 255.0).abs() < 1e-9);
        assert!((TRANSMITTANCE_EPSILON - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn try_new_rejects_bad_tile_sizes() {
        for tile_size in [0, 3, 20, 2] {
            assert_eq!(
                RenderConfig::try_new(tile_size, BoundaryMethod::Aabb),
                Err(RenderError::InvalidTileSize { tile_size })
            );
        }
    }

    #[test]
    fn builder_sets_every_knob_and_validates() {
        let config = RenderConfig::builder()
            .tile_size(32)
            .boundary(BoundaryMethod::Obb)
            .precision(Precision::Half)
            .threads(3)
            .build()
            .expect("valid configuration");
        assert_eq!(config.tile_size, 32);
        assert_eq!(config.boundary, BoundaryMethod::Obb);
        assert_eq!(config.precision, Precision::Half);
        assert_eq!(config.exec.threads, 3);
        assert_eq!(
            RenderConfig::builder().tile_size(0).build(),
            Err(RenderError::InvalidTileSize { tile_size: 0 })
        );
        assert_eq!(
            RenderConfig::builder().build().expect("default is valid"),
            RenderConfig::default()
        );
    }

    #[test]
    fn validate_catches_hand_mutated_configs() {
        // Public-field mutation can bypass the constructors; validate()
        // is what the serving path relies on to catch it.
        let mut config = RenderConfig::new(16, BoundaryMethod::Aabb);
        config.tile_size = 0;
        assert_eq!(
            config.validate(),
            Err(RenderError::InvalidTileSize { tile_size: 0 })
        );
    }

    #[test]
    fn try_new_accepts_paper_tile_sizes() {
        for size in [8, 16, 32, 64] {
            assert!(RenderConfig::try_new(size, BoundaryMethod::Ellipse).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "invalid tile size")]
    fn new_panics_on_bad_tile_size() {
        let _ = RenderConfig::new(7, BoundaryMethod::Aabb);
    }

    #[test]
    fn boundary_cost_ordering_matches_paper() {
        // AABB cheapest, ellipse most expensive (Section II-C).
        assert!(BoundaryMethod::Aabb.test_cost() < BoundaryMethod::Obb.test_cost());
        assert!(BoundaryMethod::Obb.test_cost() < BoundaryMethod::Ellipse.test_cost());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BoundaryMethod::Aabb.to_string(), "AABB");
        assert_eq!(BoundaryMethod::Obb.to_string(), "OBB");
        assert_eq!(BoundaryMethod::Ellipse.to_string(), "Ellipse");
    }

    #[test]
    fn shared_thread_knob_clamps_to_one() {
        assert_eq!(RenderConfig::default().with_threads(0).exec.threads, 1);
        assert_eq!(RenderConfig::default().with_threads(4).exec.threads, 4);
    }
}
