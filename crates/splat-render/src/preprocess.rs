//! Preprocessing stage: feature computation and culling.
//!
//! For every splat the stage computes the quantities the rest of the
//! pipeline consumes (the paper's `D`, `2D_XY`, `2D_Cov` and `G_RGB`):
//!
//! * view-space depth,
//! * projected 2D mean in pixel coordinates,
//! * projected 2D covariance via the EWA splatting approximation
//!   `Σ' = J W Σ Wᵀ Jᵀ` plus a 0.3-pixel low-pass term,
//! * view-dependent RGB color evaluated from the spherical harmonics,
//!
//! and removes splats that are outside the view frustum, behind the near
//! plane, fully transparent, or project to a degenerate covariance.

use crate::config::{RenderConfig, ALPHA_CULL_THRESHOLD};
use crate::stats::StageCounts;
use splat_core::SimdMode;
use splat_scene::{Scene, SceneSoA};
use splat_types::{eval_color, Camera, Gaussian3d, Mat2, Mat3, Vec3};

pub use splat_core::ProjectedGaussian;

/// Limit applied to the view-space lateral offsets before computing the
/// projection Jacobian, mirroring the reference CUDA implementation's
/// clamping of `t.x/t.z` and `t.y/t.z` to 1.3× the frustum tangent.
const JACOBIAN_TANGENT_GUARD: f32 = 1.3;

/// Runs preprocessing over a scene for a camera.
///
/// The returned vector preserves scene order (ascending `index`), which the
/// sorting stages rely on for deterministic tie-breaking. Counters for the
/// stage are accumulated into `counts`.
pub fn preprocess(
    scene: &Scene,
    camera: &Camera,
    config: &RenderConfig,
    counts: &mut StageCounts,
) -> Vec<ProjectedGaussian> {
    let mut projected = Vec::new();
    preprocess_into(scene, camera, config, counts, &mut projected);
    projected
}

/// In-place variant of [`preprocess`] used by the render sessions: `out` is
/// cleared and refilled, retaining its allocation. The capacity is reserved
/// for the full scene up front, so a reused buffer never grows again.
///
/// At full precision the loop iterates the scene's [`SceneSoA`] component
/// arrays (built once per scene, lazily) rather than the AoS records; with
/// a wide [`SimdMode`] the view transform additionally runs over fixed-size
/// lane chunks. Both choices are bit-identical to the record-wise scalar
/// loop — the SoA view holds the same values and the lane kernels perform
/// the same scalar operations in the same order — so precision, SIMD mode
/// and storage layout never change a projected splat or a counter.
pub fn preprocess_into(
    scene: &Scene,
    camera: &Camera,
    config: &RenderConfig,
    counts: &mut StageCounts,
    out: &mut Vec<ProjectedGaussian>,
) {
    out.clear();
    out.reserve(scene.len());
    let precision = config.precision;
    if precision == splat_types::Precision::Full {
        preprocess_soa_into(scene.soa(), camera, config.exec.simd, counts, out);
        return;
    }
    let projected = out;
    for (index, gaussian_ref) in scene.iter().enumerate() {
        counts.input_gaussians += 1;
        // Reduced precision re-quantizes every parameter, so the splat is
        // converted into a stack temporary first (the SoA fast path above
        // keeps full-precision rendering allocation-free).
        let storage = gaussian_ref.to_precision(precision);
        let gaussian = &storage;

        // Opacity culling: fully transparent splats can never contribute.
        if gaussian.opacity() < ALPHA_CULL_THRESHOLD {
            counts.culled_gaussians += 1;
            continue;
        }
        // Frustum culling with the splat's 3σ bounding sphere.
        if !camera.is_in_frustum(gaussian.position(), gaussian.bounding_radius()) {
            counts.culled_gaussians += 1;
            continue;
        }

        let view = camera.to_view(gaussian.position());
        // No cached covariance here: re-quantized parameters differ from
        // the full-precision splat the scene's SoA cache was built from.
        let splat = project_visible_splat(
            camera,
            index as u32,
            view,
            gaussian.position(),
            gaussian.scale(),
            gaussian.rotation(),
            None,
            gaussian.opacity(),
            gaussian.sh().degree(),
            gaussian.sh().coefficients(),
            counts,
        );
        if let Some(splat) = splat {
            projected.push(splat);
        }
    }
}

/// Projects every splat of a SoA view, dispatching on the SIMD mode.
fn preprocess_soa_into(
    soa: &SceneSoA,
    camera: &Camera,
    simd: SimdMode,
    counts: &mut StageCounts,
    out: &mut Vec<ProjectedGaussian>,
) {
    match simd {
        SimdMode::Scalar => {
            for i in 0..soa.len() {
                counts.input_gaussians += 1;
                project_soa_splat(soa, i, None, camera, counts, out);
            }
        }
        SimdMode::Wide4 => preprocess_soa_chunked::<4>(soa, camera, counts, out),
        SimdMode::Wide8 => preprocess_soa_chunked::<8>(soa, camera, counts, out),
    }
}

/// The chunked projection loop: the view transform runs `W` lanes at a
/// time straight from the SoA position arrays
/// ([`Camera::to_view_lanes`], bit-identical to [`Camera::to_view`]); the
/// branchy per-splat culls and covariance math then consume the
/// precomputed view per lane. The trailing `len % W` splats take the
/// scalar path.
fn preprocess_soa_chunked<const W: usize>(
    soa: &SceneSoA,
    camera: &Camera,
    counts: &mut StageCounts,
    out: &mut Vec<ProjectedGaussian>,
) {
    let n = soa.len();
    let mut xs = [0.0f32; W];
    let mut ys = [0.0f32; W];
    let mut zs = [0.0f32; W];
    let mut base = 0usize;
    while base + W <= n {
        xs.copy_from_slice(&soa.pos_x()[base..base + W]);
        ys.copy_from_slice(&soa.pos_y()[base..base + W]);
        zs.copy_from_slice(&soa.pos_z()[base..base + W]);
        let (vx, vy, vz) = camera.to_view_lanes(&xs, &ys, &zs);
        for lane in 0..W {
            counts.input_gaussians += 1;
            let view = Vec3::new(vx[lane], vy[lane], vz[lane]);
            project_soa_splat(soa, base + lane, Some(view), camera, counts, out);
        }
        base += W;
    }
    for i in base..n {
        counts.input_gaussians += 1;
        project_soa_splat(soa, i, None, camera, counts, out);
    }
}

/// Culls and projects one splat read out of the SoA arrays. `view_hint`
/// carries a chunk-precomputed view-space position (bit-identical to
/// computing it here).
#[inline]
fn project_soa_splat(
    soa: &SceneSoA,
    i: usize,
    view_hint: Option<Vec3>,
    camera: &Camera,
    counts: &mut StageCounts,
    out: &mut Vec<ProjectedGaussian>,
) {
    let opacity = soa.opacity()[i];
    // Opacity culling: fully transparent splats can never contribute.
    if opacity < ALPHA_CULL_THRESHOLD {
        counts.culled_gaussians += 1;
        return;
    }
    let position = soa.position(i);
    let scale = soa.scale(i);
    // Frustum culling with the splat's 3σ bounding sphere.
    if !camera.is_in_frustum(position, Gaussian3d::bounding_radius_of(scale)) {
        counts.culled_gaussians += 1;
        return;
    }
    let view = view_hint.unwrap_or_else(|| camera.to_view(position));
    let splat = project_visible_splat(
        camera,
        i as u32,
        view,
        position,
        scale,
        soa.rotation(i),
        Some(soa.covariance(i)),
        opacity,
        soa.sh_degree(i),
        soa.sh_coefficients(i),
        counts,
    );
    if let Some(splat) = splat {
        out.push(splat);
    }
}

/// The shared post-cull projection tail: depth/pixel mapping, the EWA
/// covariance projection and SH color evaluation. Every caller reaches
/// this with the same scalar values, so the AoS and SoA paths agree
/// bit-for-bit.
///
/// `cov3d_hint` carries the scene's cached view-independent 3D covariance
/// ([`SceneSoA::covariance`]); `None` recomputes it from `scale` and
/// `rotation`, which the cache stores bit-exactly, so the hint never
/// changes a projected splat.
#[allow(clippy::too_many_arguments)]
#[inline]
fn project_visible_splat(
    camera: &Camera,
    index: u32,
    view: Vec3,
    position: Vec3,
    scale: Vec3,
    rotation: splat_types::Quat,
    cov3d_hint: Option<Mat3>,
    opacity: f32,
    sh_degree: usize,
    sh_coefficients: &[splat_types::Rgb],
    counts: &mut StageCounts,
) -> Option<ProjectedGaussian> {
    let depth = -view.z;
    // Non-finite depths (NaN/∞ positions that slip past the frustum
    // test, whose rejecting comparisons are all false for NaN) are
    // culled here: every depth reaching the sort stage is finite, which
    // is what lets the key sort order splats without a NaN branch and
    // keeps `is_sorted_by_depth` consistent with the sort.
    if !depth.is_finite() || depth <= camera.near() {
        counts.culled_gaussians += 1;
        return None;
    }

    let Some(mean) = camera.view_to_pixel(view) else {
        counts.culled_gaussians += 1;
        return None;
    };

    // EWA covariance projection with the reference implementation's
    // tangent clamp on the Jacobian evaluation point.
    let intr = camera.intrinsics();
    let limit_x = JACOBIAN_TANGENT_GUARD * (0.5 * intr.fov_x()).tan();
    let limit_y = JACOBIAN_TANGENT_GUARD * (0.5 * intr.fov_y()).tan();
    let clamped_view = Vec3::new(
        (view.x / depth).clamp(-limit_x, limit_x) * depth,
        (view.y / depth).clamp(-limit_y, limit_y) * depth,
        view.z,
    );
    let jacobian = camera.projection_jacobian(clamped_view);
    let view_rot = camera.view_rotation();
    let t = jacobian * view_rot;
    let cov3d = cov3d_hint.unwrap_or_else(|| Gaussian3d::covariance_of(scale, rotation));
    let cov2d_full = t * cov3d * t.transpose();
    // Low-pass filter: guarantee a minimum footprint of ~0.3 px so
    // sub-pixel splats still contribute (as in the reference code).
    let cov = cov2d_full.upper_left_2x2() + Mat2::from_symmetric(0.3, 0.0, 0.3);

    let Ok(inv_cov) = cov.inverse() else {
        counts.culled_gaussians += 1;
        return None;
    };
    if cov.determinant() <= 0.0 {
        counts.culled_gaussians += 1;
        return None;
    }

    let color = eval_color(
        sh_degree,
        sh_coefficients,
        (position - camera.position()).normalized(),
    );

    counts.visible_gaussians += 1;
    Some(ProjectedGaussian {
        index,
        depth,
        mean,
        cov,
        inv_cov,
        opacity,
        color,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryMethod;
    use splat_types::{CameraIntrinsics, Gaussian3d, Quat, Vec3};

    fn camera() -> Camera {
        Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 640, 480),
        )
    }

    fn splat(pos: Vec3, opacity: f32, scale: f32) -> Gaussian3d {
        Gaussian3d::builder()
            .position(pos)
            .scale(Vec3::splat(scale))
            .rotation(Quat::IDENTITY)
            .opacity(opacity)
            .base_color([0.5, 0.6, 0.7])
            .build()
    }

    fn run(gaussians: Vec<Gaussian3d>) -> (Vec<ProjectedGaussian>, StageCounts) {
        let scene = Scene::new("t", 640, 480, gaussians);
        let mut counts = StageCounts::new();
        let projected = preprocess(
            &scene,
            &camera(),
            &RenderConfig::new(16, BoundaryMethod::Aabb),
            &mut counts,
        );
        (projected, counts)
    }

    #[test]
    fn visible_splat_is_projected_to_image_center() {
        let (projected, counts) = run(vec![splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1)]);
        assert_eq!(projected.len(), 1);
        assert_eq!(counts.visible_gaussians, 1);
        assert_eq!(counts.culled_gaussians, 0);
        let p = &projected[0];
        assert!((p.mean.x - 320.0).abs() < 1e-3);
        assert!((p.mean.y - 240.0).abs() < 1e-3);
        assert!((p.depth - 5.0).abs() < 1e-3);
    }

    #[test]
    fn behind_camera_splat_is_culled() {
        let (projected, counts) = run(vec![splat(Vec3::new(0.0, 0.0, -5.0), 0.9, 0.1)]);
        assert!(projected.is_empty());
        assert_eq!(counts.culled_gaussians, 1);
    }

    #[test]
    fn transparent_splat_is_culled() {
        let (projected, counts) = run(vec![splat(Vec3::new(0.0, 0.0, 5.0), 0.001, 0.1)]);
        assert!(projected.is_empty());
        assert_eq!(counts.culled_gaussians, 1);
    }

    #[test]
    fn far_outside_frustum_is_culled() {
        let (projected, _) = run(vec![splat(Vec3::new(500.0, 0.0, 5.0), 0.9, 0.1)]);
        assert!(projected.is_empty());
    }

    #[test]
    fn covariance_shrinks_with_distance() {
        let (projected, _) = run(vec![
            splat(Vec3::new(0.0, 0.0, 3.0), 0.9, 0.2),
            splat(Vec3::new(0.0, 0.0, 12.0), 0.9, 0.2),
        ]);
        assert_eq!(projected.len(), 2);
        let near_extent = projected[0].cov.at(0, 0);
        let far_extent = projected[1].cov.at(0, 0);
        assert!(
            near_extent > far_extent,
            "near {near_extent} far {far_extent}"
        );
    }

    #[test]
    fn low_pass_guarantees_minimum_footprint() {
        // A microscopically small splat still gets a ≥0.3 px² covariance.
        let (projected, _) = run(vec![splat(Vec3::new(0.0, 0.0, 20.0), 0.9, 1e-4)]);
        assert_eq!(projected.len(), 1);
        assert!(projected[0].cov.at(0, 0) >= 0.3);
        assert!(projected[0].cov.at(1, 1) >= 0.3);
    }

    #[test]
    fn indices_are_preserved_and_ascending() {
        let (projected, _) = run(vec![
            splat(Vec3::new(0.0, 0.0, -5.0), 0.9, 0.1), // culled
            splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1),
            splat(Vec3::new(0.5, 0.0, 6.0), 0.9, 0.1),
        ]);
        let indices: Vec<u32> = projected.iter().map(|p| p.index).collect();
        assert_eq!(indices, vec![1, 2]);
    }

    #[test]
    fn inverse_covariance_matches_covariance() {
        let (projected, _) = run(vec![splat(Vec3::new(0.3, -0.2, 4.0), 0.8, 0.15)]);
        let p = &projected[0];
        let product = p.cov * p.inv_cov;
        assert!((product.at(0, 0) - 1.0).abs() < 1e-3);
        assert!((product.at(1, 1) - 1.0).abs() < 1e-3);
        assert!(product.at(0, 1).abs() < 1e-3);
    }

    #[test]
    fn non_finite_depths_are_culled_not_propagated() {
        // Regression test for the depth comparator satellite. A position
        // within f32 range but beyond f16 range overflows to ±∞ under
        // `Precision::Half`; the view transform then yields a NaN depth
        // (∞·0 in the rotation), which slips past the frustum test (its
        // rejecting comparisons are all false for NaN) and previously
        // produced a projected splat with a NaN depth — breaking the total
        // order the sort and `is_sorted_by_depth` rely on.
        let scene = Scene::new(
            "overflow",
            640,
            480,
            vec![
                splat(Vec3::new(1.0e6, 0.0, 5.0), 0.9, 0.1),
                splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1),
            ],
        );
        let mut counts = StageCounts::new();
        let projected = preprocess(
            &scene,
            &camera(),
            &RenderConfig::new(16, BoundaryMethod::Aabb)
                .with_precision(splat_types::Precision::Half),
            &mut counts,
        );
        assert_eq!(projected.len(), 1);
        assert_eq!(counts.culled_gaussians, 1);
        assert!(projected.iter().all(|p| p.depth.is_finite()));
    }

    #[test]
    fn degenerate_camera_culls_everything_instead_of_emitting_nan_depths() {
        // A NaN camera pose (e.g. from broken trajectory math) must not
        // leak NaN depths into the sort stage.
        let scene = Scene::new(
            "t",
            640,
            480,
            vec![splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1)],
        );
        let nan_camera = Camera::look_at(
            Vec3::new(f32::NAN, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 640, 480),
        );
        let mut counts = StageCounts::new();
        let projected = preprocess(
            &scene,
            &nan_camera,
            &RenderConfig::new(16, BoundaryMethod::Aabb),
            &mut counts,
        );
        assert!(projected.is_empty());
        assert_eq!(counts.culled_gaussians, 1);
    }

    #[test]
    fn preprocess_into_reuses_the_buffer_and_matches_the_owned_path() {
        let gaussians = vec![
            splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1),
            splat(Vec3::new(0.5, 0.0, 6.0), 0.9, 0.1),
        ];
        let scene = Scene::new("t", 640, 480, gaussians);
        let config = RenderConfig::new(16, BoundaryMethod::Aabb);

        let mut counts = StageCounts::new();
        let owned = preprocess(&scene, &camera(), &config, &mut counts);

        let mut reused = Vec::new();
        for _ in 0..3 {
            let mut c = StageCounts::new();
            preprocess_into(&scene, &camera(), &config, &mut c, &mut reused);
            assert_eq!(reused, owned);
            assert_eq!(c, counts);
        }
        assert!(reused.capacity() >= scene.len());
    }

    #[test]
    fn simd_projection_is_bit_identical_to_scalar_projection() {
        // 21 splats: two full 8-lane chunks + a 5-splat tail for Wide8,
        // five 4-lane chunks + 1 tail for Wide4. Includes culled splats so
        // lane bookkeeping around rejected candidates is exercised.
        let mut gaussians = Vec::new();
        for i in 0..21 {
            let angle = i as f32 * 0.37;
            let pos = match i % 5 {
                4 => Vec3::new(0.0, 0.0, -4.0), // behind the camera
                _ => Vec3::new(angle.sin() * 1.5, angle.cos(), 3.0 + 0.4 * i as f32),
            };
            gaussians.push(
                Gaussian3d::builder()
                    .position(pos)
                    .scale(Vec3::new(0.1 + 0.01 * i as f32, 0.2, 0.15))
                    .rotation(Quat::from_axis_angle(Vec3::Y, angle))
                    .opacity(if i == 7 {
                        0.0001
                    } else {
                        0.5 + 0.02 * i as f32
                    })
                    .base_color([0.4, 0.5, 0.6])
                    .build(),
            );
        }
        let scene = Scene::new("simd", 640, 480, gaussians);
        let base = RenderConfig::new(16, BoundaryMethod::Aabb);

        let mut scalar_counts = StageCounts::new();
        let scalar = preprocess(&scene, &camera(), &base, &mut scalar_counts);
        assert!(!scalar.is_empty());
        assert!(scalar_counts.culled_gaussians > 0);

        for simd in [splat_core::SimdMode::Wide4, splat_core::SimdMode::Wide8] {
            let mut config = base;
            config.exec.simd = simd;
            let mut counts = StageCounts::new();
            let wide = preprocess(&scene, &camera(), &config, &mut counts);
            assert_eq!(counts, scalar_counts, "{simd:?}");
            assert_eq!(wide, scalar, "{simd:?}");
        }
    }

    #[test]
    fn counts_accumulate_inputs() {
        let (_, counts) = run(vec![
            splat(Vec3::new(0.0, 0.0, 5.0), 0.9, 0.1),
            splat(Vec3::new(0.0, 0.0, -5.0), 0.9, 0.1),
        ]);
        assert_eq!(counts.input_gaussians, 2);
        assert_eq!(counts.visible_gaussians + counts.culled_gaussians, 2);
    }
}
