//! Reusable render sessions: allocation-free steady-state rendering.
//!
//! [`RenderSession`] wraps a [`Renderer`](crate::Renderer) together with a
//! [`splat_core::FrameArena`] and a persistent [`TileAssignments`], so that
//! rendering frame after frame — e.g. every pose of a
//! [`splat_scene::CameraTrajectory`] — recycles every buffer: projected
//! splats, the CSR assignment storage, the key-sort scratch and the
//! framebuffer. Only the first frame (or a frame that grows past every
//! previous one) touches the allocator; each rendered frame is bit-exactly
//! identical to what a fresh [`Renderer::render`](crate::Renderer::render)
//! would produce, with
//! identical [`StageCounts`].

use crate::config::RenderConfig;
use crate::preprocess::preprocess_into;
use crate::sort::sort_tiles_with;
use crate::tiling::{identify_tiles_into, TileAssignments, TileGrid};
use splat_core::{
    FrameArena, RenderBackend, RenderOutput, RenderRequest, RenderStats, SessionFrame, StageCounts,
};
use splat_scene::Scene;
use splat_types::{Camera, RenderError};
use std::time::Instant;

/// A baseline renderer plus the recyclable state to render many frames
/// without steady-state allocation.
#[derive(Debug, Clone)]
pub struct RenderSession {
    renderer: crate::Renderer,
    arena: FrameArena<u32>,
    assignments: TileAssignments,
}

impl RenderSession {
    /// Creates a session around a renderer. No buffers are allocated until
    /// the first frame.
    pub fn new(renderer: crate::Renderer) -> Self {
        Self {
            renderer,
            arena: FrameArena::new(),
            assignments: TileAssignments::empty(),
        }
    }

    /// Convenience constructor from a configuration.
    pub fn from_config(config: RenderConfig) -> Self {
        Self::new(crate::Renderer::new(config))
    }

    /// The wrapped renderer.
    pub fn renderer(&self) -> &crate::Renderer {
        &self.renderer
    }

    /// Bytes currently reserved by the session's recycled buffers. After a
    /// warm-up frame this is stable across steady-state frames.
    pub fn footprint_bytes(&self) -> usize {
        self.arena.footprint_bytes() + self.assignments.footprint_bytes()
    }

    /// Renders one view into the session's recycled framebuffer.
    ///
    /// The returned frame borrows the framebuffer; copy it out if it must
    /// survive the next [`RenderSession::render`] call. Pixels and
    /// [`StageCounts`] are bit-identical to a fresh
    /// [`Renderer::render`](crate::Renderer::render) of the same view.
    pub fn render(&mut self, scene: &Scene, camera: &Camera) -> SessionFrame<'_> {
        let mut counts = StageCounts::new();
        let config = *self.renderer.config();

        let start = Instant::now();
        preprocess_into(
            scene,
            camera,
            &config,
            &mut counts,
            &mut self.arena.projected,
        );
        let preprocess_time = start.elapsed();

        let start = Instant::now();
        let grid = TileGrid::new(camera.width(), camera.height(), config.tile_size);
        identify_tiles_into(
            &self.arena.projected,
            grid,
            config.boundary,
            config.prepass,
            &mut counts,
            &mut self.arena.csr,
            &mut self.assignments,
        );
        let identify_time = start.elapsed();

        let start = Instant::now();
        sort_tiles_with(
            &mut self.assignments,
            &self.arena.projected,
            &mut counts,
            &mut self.arena.keys,
        );
        let sort_time = start.elapsed();

        let start = Instant::now();
        counts += self.renderer.rasterize_into(
            &self.arena.projected,
            &self.assignments,
            camera,
            &mut self.arena.framebuffer,
            &mut self.arena.span,
        );
        let raster_time = start.elapsed();
        let span_build_time = self.arena.span.take_build_time();

        SessionFrame {
            image: &self.arena.framebuffer,
            stats: RenderStats {
                counts,
                preprocess_time,
                identify_time,
                sort_time,
                raster_time,
                span_build_time,
            },
        }
    }
}

impl RenderBackend for RenderSession {
    fn name(&self) -> &'static str {
        "baseline-session"
    }

    /// Serves one request through the session's recycled buffers. The
    /// returned image is an owned copy of the arena framebuffer (the
    /// borrow-free contract of the trait); the pipeline scratch itself is
    /// still recycled across calls.
    fn render(&mut self, request: &RenderRequest<'_>) -> Result<RenderOutput, RenderError> {
        self.renderer.config().validate()?;
        request.validate()?;
        TileGrid::try_new(
            request.camera.width(),
            request.camera.height(),
            self.renderer.config().tile_size,
        )?;
        let stats = {
            let frame = RenderSession::render(self, request.scene, &request.camera);
            frame.stats
        };
        Ok(RenderOutput {
            image: self.arena.framebuffer.clone(),
            stats,
        })
    }

    fn footprint_bytes(&self) -> usize {
        RenderSession::footprint_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundaryMethod;
    use splat_scene::{CameraTrajectory, PaperScene, SceneScale};
    use splat_types::{CameraIntrinsics, Vec3};

    fn trajectory(views: usize) -> CameraTrajectory {
        CameraTrajectory::orbit(
            CameraIntrinsics::from_fov_y(1.0, 96, 64),
            Vec3::new(0.0, 0.0, 6.0),
            4.0,
            0.5,
            views,
        )
    }

    #[test]
    fn session_frames_match_fresh_renders_bit_exactly() {
        let scene = PaperScene::Playroom.build(SceneScale::Tiny, 1);
        let renderer = crate::Renderer::new(RenderConfig::new(16, BoundaryMethod::Ellipse));
        let mut session = RenderSession::new(renderer.clone());
        for camera in trajectory(4).cameras() {
            let fresh = renderer.render(&scene, &camera);
            let frame = session.render(&scene, &camera);
            assert_eq!(frame.image.max_abs_diff(&fresh.image), 0.0);
            assert_eq!(frame.stats.counts, fresh.stats.counts);
        }
    }

    #[test]
    fn steady_state_footprint_is_stable() {
        let scene = PaperScene::Train.build(SceneScale::Tiny, 2);
        let mut session = RenderSession::from_config(RenderConfig::new(16, BoundaryMethod::Aabb));
        let trajectory = trajectory(3);
        // Warm-up pass: buffers grow to the trajectory's high-water mark.
        for camera in trajectory.cameras() {
            let _ = session.render(&scene, &camera);
        }
        let warmed = session.footprint_bytes();
        assert!(warmed > 0);
        // Steady-state pass: re-rendering the same trajectory must not
        // grow any buffer.
        for camera in trajectory.cameras() {
            let _ = session.render(&scene, &camera);
            assert_eq!(session.footprint_bytes(), warmed);
        }
    }

    #[test]
    fn session_backend_trait_matches_fresh_renders() {
        let scene = PaperScene::Playroom.build(SceneScale::Tiny, 3);
        let renderer = crate::Renderer::new(RenderConfig::new(16, BoundaryMethod::Ellipse));
        let mut backend: Box<dyn RenderBackend> = Box::new(RenderSession::new(renderer.clone()));
        assert_eq!(backend.name(), "baseline-session");
        for camera in trajectory(3).cameras() {
            let fresh = renderer.render(&scene, &camera);
            let served = backend
                .render(&RenderRequest::new(&scene, camera))
                .expect("valid request");
            assert_eq!(served.image.max_abs_diff(&fresh.image), 0.0);
            assert_eq!(served.stats.counts, fresh.stats.counts);
        }
    }

    #[test]
    fn session_backend_trait_rejects_empty_scenes() {
        let mut session = RenderSession::from_config(RenderConfig::default());
        let empty = Scene::new("empty", 32, 32, Vec::new());
        let camera = Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::Y,
            CameraIntrinsics::from_fov_y(1.0, 32, 32),
        );
        assert!(RenderBackend::render(&mut session, &RenderRequest::new(&empty, camera)).is_err());
    }

    #[test]
    fn session_supports_changing_resolution() {
        let scene = PaperScene::Playroom.build(SceneScale::Tiny, 0);
        let mut session = RenderSession::from_config(RenderConfig::new(16, BoundaryMethod::Aabb));
        for (w, h) in [(64, 48), (96, 64), (64, 48)] {
            let camera = Camera::look_at(
                Vec3::ZERO,
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::Y,
                CameraIntrinsics::from_fov_y(1.0, w, h),
            );
            let frame = session.render(&scene, &camera);
            assert_eq!((frame.image.width(), frame.image.height()), (w, h));
        }
    }
}
