//! Screen-space splat footprints and tile intersection tests.
//!
//! Tile identification asks, for every projected splat, which tiles its
//! 3σ extent touches. The paper compares three boundary methods (Fig. 2):
//!
//! * **AABB** — the original 3D-GS conservatively uses a square box whose
//!   half-extent is `3·√λ_max` (the largest eigenvalue of the 2D
//!   covariance). Cheapest test, most false positives.
//! * **OBB** — GSCore uses the oriented rectangle spanned by the ellipse's
//!   principal axes with half-extents `3·√λ_max` × `3·√λ_min`; tested
//!   against a tile with a separating-axis test.
//! * **Ellipse** — FlashGS tests the exact 3σ ellipse against the tile
//!   rectangle (a box-constrained minimization of the Mahalanobis form).
//!
//! The rectangle type and the 3σ constants live in [`splat_core::rect`]
//! (they are shared with the blending kernel) and are re-exported here.

pub use splat_core::{TileRect, MAHALANOBIS_CUTOFF, SIGMA_EXTENT};

use crate::config::BoundaryMethod;
use splat_types::{Mat2, Vec2};

/// The screen-space footprint of one projected splat: everything the
/// boundary tests need, precomputed once per splat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianFootprint {
    /// Projected center in pixels.
    pub mean: Vec2,
    /// Inverse of the 2D covariance (the conic used by α-computation).
    pub inv_cov: Mat2,
    /// Unit vector of the major principal axis.
    pub axis_major: Vec2,
    /// Unit vector of the minor principal axis.
    pub axis_minor: Vec2,
    /// 3σ extent along the major axis, in pixels.
    pub radius_major: f32,
    /// 3σ extent along the minor axis, in pixels.
    pub radius_minor: f32,
}

impl GaussianFootprint {
    /// Builds a footprint from the projected mean and 2D covariance.
    ///
    /// Returns `None` when the covariance is degenerate (non-invertible),
    /// which mirrors the reference implementation culling such splats.
    pub fn from_covariance(mean: Vec2, cov: Mat2) -> Option<Self> {
        let inv_cov = cov.inverse().ok()?;
        let (l_max, l_min) = cov.symmetric_eigenvalues();
        if l_max <= 0.0 || l_min <= 0.0 {
            return None;
        }
        let (axis_major, axis_minor) = cov.symmetric_eigenvectors();
        Some(Self {
            mean,
            inv_cov,
            axis_major,
            axis_minor,
            radius_major: SIGMA_EXTENT * l_max.sqrt(),
            radius_minor: SIGMA_EXTENT * l_min.sqrt(),
        })
    }

    /// Half-extent of the conservative square AABB used by the original
    /// 3D-GS (3σ of the largest eigenvalue in both axes).
    #[inline]
    pub fn aabb_half_extent(&self) -> f32 {
        self.radius_major
    }

    /// Tight axis-aligned half extents of the 3σ ellipse, used to bound the
    /// candidate tile range for the OBB and ellipse tests.
    pub fn tight_half_extent(&self) -> Vec2 {
        // Extent of an ellipse along a coordinate axis e is
        // sqrt(Σ r_i² (a_i · e)²) over the principal axes a_i.
        let ex = ((self.radius_major * self.axis_major.x).powi(2)
            + (self.radius_minor * self.axis_minor.x).powi(2))
        .sqrt();
        let ey = ((self.radius_major * self.axis_major.y).powi(2)
            + (self.radius_minor * self.axis_minor.y).powi(2))
        .sqrt();
        Vec2::new(ex, ey)
    }

    /// The half-extent used to collect candidate tiles for a given boundary
    /// method (square for AABB, tight ellipse bounds otherwise).
    pub fn candidate_half_extent(&self, method: BoundaryMethod) -> Vec2 {
        match method {
            BoundaryMethod::Aabb => Vec2::splat(self.aabb_half_extent()),
            BoundaryMethod::Obb | BoundaryMethod::Ellipse => self.tight_half_extent(),
        }
    }

    /// Squared Mahalanobis distance of a pixel-space point from the splat
    /// center: `(p-μ)ᵀ Σ⁻¹ (p-μ)`.
    #[inline]
    pub fn mahalanobis_sq(&self, p: Vec2) -> f32 {
        let d = p - self.mean;
        d.dot(self.inv_cov.mul_vec(d))
    }

    /// Tests whether the footprint intersects a rectangle under the given
    /// boundary method.
    pub fn intersects(&self, rect: &TileRect, method: BoundaryMethod) -> bool {
        match method {
            BoundaryMethod::Aabb => self.intersects_aabb(rect),
            BoundaryMethod::Obb => self.intersects_obb(rect),
            BoundaryMethod::Ellipse => self.intersects_ellipse(rect),
        }
    }

    /// AABB test: overlap between the square box and the tile rectangle.
    fn intersects_aabb(&self, rect: &TileRect) -> bool {
        let half = self.aabb_half_extent();
        self.mean.x + half >= rect.x0
            && self.mean.x - half <= rect.x1
            && self.mean.y + half >= rect.y0
            && self.mean.y - half <= rect.y1
    }

    /// OBB test: separating-axis test between the oriented 3σ rectangle and
    /// the axis-aligned tile rectangle.
    fn intersects_obb(&self, rect: &TileRect) -> bool {
        let rect_center = rect.center();
        let rect_half = rect.half_extent();
        let delta = self.mean - rect_center;

        // Axes to test: tile axes (x, y) and OBB axes (major, minor).
        let obb_axes = [self.axis_major, self.axis_minor];
        let obb_radii = [self.radius_major, self.radius_minor];

        // Tile axes.
        for (axis, tile_half) in [
            (Vec2::new(1.0, 0.0), rect_half.x),
            (Vec2::new(0.0, 1.0), rect_half.y),
        ] {
            let obb_proj = obb_radii[0] * obb_axes[0].dot(axis).abs()
                + obb_radii[1] * obb_axes[1].dot(axis).abs();
            if delta.dot(axis).abs() > tile_half + obb_proj {
                return false;
            }
        }
        // OBB axes.
        for i in 0..2 {
            let axis = obb_axes[i];
            let tile_proj = rect_half.x * axis.x.abs() + rect_half.y * axis.y.abs();
            if delta.dot(axis).abs() > obb_radii[i] + tile_proj {
                return false;
            }
        }
        true
    }

    /// Exact ellipse test: does any point of the rectangle lie within the
    /// 3σ Mahalanobis boundary?
    ///
    /// If the center is inside the rectangle the answer is trivially yes;
    /// otherwise the constrained minimum of the (convex) Mahalanobis form
    /// over the rectangle lies on its boundary, so the four edges are
    /// minimized in closed form.
    fn intersects_ellipse(&self, rect: &TileRect) -> bool {
        if rect.contains(self.mean) {
            return true;
        }
        let corners = [
            Vec2::new(rect.x0, rect.y0),
            Vec2::new(rect.x1, rect.y0),
            Vec2::new(rect.x1, rect.y1),
            Vec2::new(rect.x0, rect.y1),
        ];
        let edges = [
            (corners[0], corners[1]),
            (corners[1], corners[2]),
            (corners[2], corners[3]),
            (corners[3], corners[0]),
        ];
        let mut min_d2 = f32::INFINITY;
        for (a, b) in edges {
            min_d2 = min_d2.min(self.min_mahalanobis_on_segment(a, b));
            if min_d2 <= MAHALANOBIS_CUTOFF {
                return true;
            }
        }
        min_d2 <= MAHALANOBIS_CUTOFF
    }

    /// Minimum of the squared Mahalanobis distance over the segment
    /// `a + t (b - a)`, `t ∈ [0, 1]` (closed-form for a 1D quadratic).
    fn min_mahalanobis_on_segment(&self, a: Vec2, b: Vec2) -> f32 {
        let d = b - a;
        let m = a - self.mean;
        let ad = self.inv_cov.mul_vec(d);
        let quad = d.dot(ad);
        let lin = m.dot(ad);
        let t = if quad.abs() < 1e-12 {
            0.0
        } else {
            (-lin / quad).clamp(0.0, 1.0)
        };
        let p = a + d * t;
        self.mahalanobis_sq(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splat_types::rng::Rng;

    /// Circular footprint of radius 3σ·σ = 3·σ pixels.
    fn circular(mean: Vec2, sigma: f32) -> GaussianFootprint {
        GaussianFootprint::from_covariance(
            mean,
            Mat2::from_symmetric(sigma * sigma, 0.0, sigma * sigma),
        )
        .expect("non-degenerate")
    }

    /// Elongated footprint rotated by `angle`.
    fn elongated(mean: Vec2, sigma_major: f32, sigma_minor: f32, angle: f32) -> GaussianFootprint {
        let (s, c) = angle.sin_cos();
        // R diag(a², b²) Rᵀ
        let a2 = sigma_major * sigma_major;
        let b2 = sigma_minor * sigma_minor;
        let cov = Mat2::from_symmetric(
            c * c * a2 + s * s * b2,
            c * s * (a2 - b2),
            s * s * a2 + c * c * b2,
        );
        GaussianFootprint::from_covariance(mean, cov).expect("non-degenerate")
    }

    #[test]
    fn degenerate_covariance_is_rejected() {
        assert!(GaussianFootprint::from_covariance(Vec2::ZERO, Mat2::ZERO).is_none());
    }

    #[test]
    fn isotropic_footprint_has_equal_radii() {
        let f = circular(Vec2::ZERO, 2.0);
        assert!((f.radius_major - 6.0).abs() < 1e-4);
        assert!((f.radius_minor - 6.0).abs() < 1e-4);
        assert!((f.aabb_half_extent() - 6.0).abs() < 1e-4);
    }

    #[test]
    fn tight_extent_of_axis_aligned_ellipse() {
        let f = elongated(Vec2::ZERO, 4.0, 1.0, 0.0);
        let ext = f.tight_half_extent();
        assert!((ext.x - 12.0).abs() < 1e-3);
        assert!((ext.y - 3.0).abs() < 1e-3);
    }

    #[test]
    fn all_methods_agree_for_center_inside_tile() {
        let f = circular(Vec2::new(8.0, 8.0), 1.0);
        let tile = TileRect::new(0.0, 0.0, 16.0, 16.0);
        for m in BoundaryMethod::ALL {
            assert!(f.intersects(&tile, m), "method {m}");
        }
    }

    #[test]
    fn all_methods_agree_for_far_away_tile() {
        let f = circular(Vec2::new(8.0, 8.0), 1.0);
        let tile = TileRect::new(200.0, 200.0, 216.0, 216.0);
        for m in BoundaryMethod::ALL {
            assert!(!f.intersects(&tile, m), "method {m}");
        }
    }

    #[test]
    fn aabb_is_more_conservative_than_obb_for_diagonal_splats() {
        // A long thin splat at 45° near a tile corner: the square AABB
        // reaches the tile, the oriented box does not.
        let f = elongated(Vec2::new(40.0, 0.0), 10.0, 1.0, std::f32::consts::FRAC_PI_4);
        let tile = TileRect::new(0.0, 0.0, 16.0, 16.0);
        // AABB half-extent is 30 px in both axes → reaches x≤16.
        assert!(f.intersects(&tile, BoundaryMethod::Aabb));
        // The oriented box points away from the tile corner.
        assert!(!f.intersects(&tile, BoundaryMethod::Ellipse));
    }

    #[test]
    fn obb_is_at_least_as_tight_as_aabb_never_misses_ellipse_hits() {
        // Sanity on a grid of tiles around an anisotropic splat.
        let f = elongated(Vec2::new(50.0, 50.0), 6.0, 1.5, 0.7);
        for ty in 0..7 {
            for tx in 0..7 {
                let tile = TileRect::new(
                    tx as f32 * 16.0,
                    ty as f32 * 16.0,
                    (tx + 1) as f32 * 16.0,
                    (ty + 1) as f32 * 16.0,
                );
                let aabb = f.intersects(&tile, BoundaryMethod::Aabb);
                let obb = f.intersects(&tile, BoundaryMethod::Obb);
                let ellipse = f.intersects(&tile, BoundaryMethod::Ellipse);
                // Hierarchy: ellipse ⊆ obb ⊆ aabb.
                assert!(
                    !ellipse || obb,
                    "ellipse hit must be an OBB hit ({tx},{ty})"
                );
                assert!(!obb || aabb, "OBB hit must be an AABB hit ({tx},{ty})");
            }
        }
    }

    #[test]
    fn ellipse_test_counts_fewer_tiles_for_elongated_splats() {
        // Mirrors Fig. 2: the same splat intersects fewer tiles under
        // tighter boundary methods.
        let f = elongated(Vec2::new(64.0, 64.0), 8.0, 2.0, 0.5);
        let count = |m: BoundaryMethod| {
            let mut n = 0;
            for ty in 0..8 {
                for tx in 0..8 {
                    let tile = TileRect::new(
                        tx as f32 * 16.0,
                        ty as f32 * 16.0,
                        (tx + 1) as f32 * 16.0,
                        (ty + 1) as f32 * 16.0,
                    );
                    if f.intersects(&tile, m) {
                        n += 1;
                    }
                }
            }
            n
        };
        let aabb = count(BoundaryMethod::Aabb);
        let obb = count(BoundaryMethod::Obb);
        let ellipse = count(BoundaryMethod::Ellipse);
        assert!(aabb >= obb, "aabb {aabb} >= obb {obb}");
        assert!(obb >= ellipse, "obb {obb} >= ellipse {ellipse}");
        assert!(
            aabb > ellipse,
            "expected strict reduction, aabb {aabb} ellipse {ellipse}"
        );
    }

    #[test]
    fn mahalanobis_is_zero_at_center() {
        let f = elongated(Vec2::new(3.0, 4.0), 2.0, 1.0, 0.3);
        assert!(f.mahalanobis_sq(Vec2::new(3.0, 4.0)) < 1e-6);
    }

    #[test]
    fn mahalanobis_matches_sigma_along_axes() {
        let f = elongated(Vec2::ZERO, 2.0, 1.0, 0.0);
        // One sigma along the major axis (x): distance² = 1.
        assert!((f.mahalanobis_sq(Vec2::new(2.0, 0.0)) - 1.0).abs() < 1e-3);
        // Three sigma along the minor axis (y): distance² = 9.
        assert!((f.mahalanobis_sq(Vec2::new(0.0, 3.0)) - 9.0).abs() < 1e-3);
    }

    #[test]
    fn ellipse_boundary_is_respected() {
        let f = circular(Vec2::new(100.0, 100.0), 2.0); // 3σ radius = 6 px
                                                        // Tile whose nearest corner is 5 px away → intersects.
        let near = TileRect::new(103.5, 103.5, 119.5, 119.5);
        assert!(f.intersects(&near, BoundaryMethod::Ellipse));
        // Tile whose nearest corner is ~8.5 px away → no intersection.
        let far = TileRect::new(106.0, 106.0, 122.0, 122.0);
        assert!(!f.intersects(&far, BoundaryMethod::Ellipse));
    }

    /// The tightness hierarchy ellipse ⊆ OBB ⊆ AABB must hold for any
    /// splat and tile: a tighter method never reports an intersection that
    /// a looser method misses. Swept over a deterministic random sample of
    /// splats and tiles.
    #[test]
    fn boundary_method_hierarchy_holds_for_sampled_splats() {
        let mut rng = Rng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        for case in 0..500 {
            let mx = rng.range_f32(0.0, 256.0);
            let my = rng.range_f32(0.0, 256.0);
            let s_major = rng.range_f32(0.5, 20.0);
            let ratio = rng.range_f32(0.05, 1.0);
            let angle = rng.range_f32(0.0, std::f32::consts::PI);
            let tx = rng.range_f32(0.0, 16.0).floor();
            let ty = rng.range_f32(0.0, 16.0).floor();
            let f = elongated(
                Vec2::new(mx, my),
                s_major,
                (s_major * ratio).max(0.1),
                angle,
            );
            let tile = TileRect::new(tx * 16.0, ty * 16.0, (tx + 1.0) * 16.0, (ty + 1.0) * 16.0);
            let aabb = f.intersects(&tile, BoundaryMethod::Aabb);
            let obb = f.intersects(&tile, BoundaryMethod::Obb);
            let ellipse = f.intersects(&tile, BoundaryMethod::Ellipse);
            // The 3σ ellipse is inscribed in both the oriented box and the
            // square AABB, so an ellipse hit implies a hit for the other
            // two methods. (OBB and AABB are not ordered against each
            // other: a rotated OBB corner can poke outside the square.)
            assert!(!ellipse || obb, "case {case}: ellipse hit missed by OBB");
            assert!(!ellipse || aabb, "case {case}: ellipse hit missed by AABB");
        }
    }

    /// Any pixel inside the tile that is within the 3σ Mahalanobis
    /// boundary implies the ellipse test reports an intersection. Swept
    /// over a deterministic random sample.
    #[test]
    fn ellipse_test_is_complete_for_sampled_pixels() {
        let mut rng = Rng::seed_from_u64(0x1234_5678_9ABC_DEF1);
        let tile = TileRect::new(48.0, 48.0, 64.0, 64.0);
        for case in 0..500 {
            let mx = rng.range_f32(0.0, 128.0);
            let my = rng.range_f32(0.0, 128.0);
            let s_major = rng.range_f32(0.5, 10.0);
            let ratio = rng.range_f32(0.1, 1.0);
            let angle = rng.range_f32(0.0, std::f32::consts::PI);
            let px_frac = rng.range_f32(0.0, 1.0);
            let py_frac = rng.range_f32(0.0, 1.0);
            let f = elongated(
                Vec2::new(mx, my),
                s_major,
                (s_major * ratio).max(0.1),
                angle,
            );
            let p = Vec2::new(
                tile.x0 + px_frac * (tile.x1 - tile.x0),
                tile.y0 + py_frac * (tile.y1 - tile.y0),
            );
            if f.mahalanobis_sq(p) <= MAHALANOBIS_CUTOFF {
                assert!(
                    f.intersects(&tile, BoundaryMethod::Ellipse),
                    "case {case}: in-boundary pixel not reported"
                );
            }
        }
    }
}
