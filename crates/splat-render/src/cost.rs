//! Analytic cost model converting operation counts to normalized stage
//! times.
//!
//! The paper's GPU figures (Figs. 3, 11, 12, 13) show *relative* stage
//! runtimes across tile sizes and pipeline variants. Wall-clock timing of
//! this Rust reference implementation reproduces the same trends but is
//! noisy and machine dependent; the cost model provides a deterministic
//! alternative by charging every counted operation a fixed cost. The
//! constants are expressed in arbitrary "nanosecond-like" units whose
//! absolute scale is irrelevant — every figure normalizes to a baseline.

use crate::config::BoundaryMethod;
use crate::stats::StageCounts;

/// Normalized per-stage times produced by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimes {
    /// Preprocessing: feature computation, culling and tile/group
    /// identification (plus bitmask generation when it cannot be hidden).
    pub preprocess: f64,
    /// Tile- or group-wise sorting.
    pub sort: f64,
    /// Tile-wise rasterization.
    pub raster: f64,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> f64 {
        self.preprocess + self.sort + self.raster
    }

    /// Speedup of `self` relative to `baseline` (total time ratio).
    pub fn speedup_over(&self, baseline: &StageTimes) -> f64 {
        if self.total() <= 0.0 {
            return 0.0;
        }
        baseline.total() / self.total()
    }

    /// Element-wise addition (used when aggregating multiple views).
    pub fn add(&self, other: &StageTimes) -> StageTimes {
        StageTimes {
            preprocess: self.preprocess + other.preprocess,
            sort: self.sort + other.sort,
            raster: self.raster + other.raster,
        }
    }

    /// Scales every stage by a constant (e.g. averaging over views).
    pub fn scale(&self, factor: f64) -> StageTimes {
        StageTimes {
            preprocess: self.preprocess * factor,
            sort: self.sort * factor,
            raster: self.raster * factor,
        }
    }
}

/// Per-operation costs of the pipeline, in arbitrary time units.
///
/// The defaults are loosely calibrated against the per-stage runtime split
/// the paper reports for a 16×16 AABB baseline on the A6000 (Fig. 3): the
/// exact values only set the relative weight of the three stages, every
/// experiment reports ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of computing features (projection, EWA covariance, SH color)
    /// for one visible splat.
    pub feature_per_visible: f64,
    /// Cost of culling one input splat (frustum + opacity test).
    pub cull_per_input: f64,
    /// Base cost of one tile/group boundary test; multiplied by the
    /// boundary method's [`BoundaryMethod::test_cost`].
    pub tile_test_base: f64,
    /// Cost of appending one (tile, splat) pair to an identification list.
    pub intersection_append: f64,
    /// Cost of one depth-sort comparison.
    pub sort_comparison: f64,
    /// Cost of one bitmask AND/OR filter operation in the GS-TG
    /// rasterization front-end.
    pub bitmask_filter_op: f64,
    /// Cost of one α-computation (Eq. 1).
    pub alpha_computation: f64,
    /// Cost of one α-blend accumulation (Eq. 2).
    pub blend_operation: f64,
    /// Fixed per-pixel overhead of the rasterizer inner loop setup.
    pub pixel_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            feature_per_visible: 55.0,
            cull_per_input: 6.0,
            tile_test_base: 5.0,
            intersection_append: 2.0,
            sort_comparison: 3.0,
            bitmask_filter_op: 0.5,
            alpha_computation: 9.0,
            blend_operation: 5.0,
            pixel_overhead: 1.5,
        }
    }
}

impl CostModel {
    /// Creates the default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts counted work into normalized stage times for the baseline
    /// pipeline, where tile identification (performed with
    /// `identification_boundary`) belongs to the preprocessing stage.
    pub fn baseline_times(
        &self,
        counts: &StageCounts,
        identification_boundary: BoundaryMethod,
    ) -> StageTimes {
        StageTimes {
            preprocess: self.preprocess_cost(counts, identification_boundary, 0.0),
            sort: self.sort_cost(counts),
            raster: self.raster_cost(counts),
        }
    }

    /// Converts counted work into stage times for the GS-TG pipeline
    /// running on a GPU, where bitmask generation (small-tile tests,
    /// performed with `bitmask_boundary`) executes *sequentially* inside
    /// the preprocessing stage because the SIMT model cannot overlap it
    /// with group sorting (Section V-A / Fig. 13).
    pub fn gstg_sequential_times(
        &self,
        counts: &StageCounts,
        group_boundary: BoundaryMethod,
        bitmask_boundary: BoundaryMethod,
    ) -> StageTimes {
        let bitmask_cost =
            counts.bitmask_tests as f64 * self.tile_test_base * bitmask_boundary.test_cost();
        StageTimes {
            preprocess: self.preprocess_cost(counts, group_boundary, bitmask_cost),
            sort: self.sort_cost(counts),
            raster: self.raster_cost(counts),
        }
    }

    /// Converts counted work into stage times for the GS-TG pipeline on the
    /// dedicated accelerator, where bitmask generation runs in parallel
    /// with group-wise sorting and is therefore hidden behind whichever of
    /// the two takes longer.
    pub fn gstg_overlapped_times(
        &self,
        counts: &StageCounts,
        group_boundary: BoundaryMethod,
        bitmask_boundary: BoundaryMethod,
    ) -> StageTimes {
        let bitmask_cost =
            counts.bitmask_tests as f64 * self.tile_test_base * bitmask_boundary.test_cost();
        let sort = self.sort_cost(counts);
        StageTimes {
            preprocess: self.preprocess_cost(counts, group_boundary, 0.0),
            sort: sort.max(bitmask_cost),
            raster: self.raster_cost(counts),
        }
    }

    fn preprocess_cost(&self, counts: &StageCounts, boundary: BoundaryMethod, extra: f64) -> f64 {
        counts.input_gaussians as f64 * self.cull_per_input
            + counts.visible_gaussians as f64 * self.feature_per_visible
            + counts.tile_tests as f64 * self.tile_test_base * boundary.test_cost()
            + counts.tile_intersections as f64 * self.intersection_append
            + extra
    }

    fn sort_cost(&self, counts: &StageCounts) -> f64 {
        counts.sort_comparisons as f64 * self.sort_comparison
    }

    fn raster_cost(&self, counts: &StageCounts) -> f64 {
        counts.pixels as f64 * self.pixel_overhead
            + counts.alpha_computations as f64 * self.alpha_computation
            + counts.blend_operations as f64 * self.blend_operation
            + counts.bitmask_filter_ops as f64 * self.bitmask_filter_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> StageCounts {
        StageCounts {
            input_gaussians: 1000,
            culled_gaussians: 200,
            visible_gaussians: 800,
            tile_tests: 6000,
            tiles_tested: 6000,
            tiles_hit: 3000,
            prepass_overcount_trimmed: 0,
            tile_intersections: 3000,
            bitmask_tests: 2000,
            sort_comparisons: 20_000,
            sort_keys: 5000,
            radix_passes: 40,
            bitmask_filter_ops: 4000,
            alpha_computations: 500_000,
            blend_operations: 200_000,
            early_exits: 100,
            pixels: 65_536,
            span_rows_built: 0,
            span_skipped_alpha: 0,
            tile_saturation_exits: 0,
        }
    }

    #[test]
    fn totals_sum_stages() {
        let t = StageTimes {
            preprocess: 1.0,
            sort: 2.0,
            raster: 3.0,
        };
        assert_eq!(t.total(), 6.0);
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let fast = StageTimes {
            preprocess: 1.0,
            sort: 1.0,
            raster: 1.0,
        };
        let slow = StageTimes {
            preprocess: 2.0,
            sort: 2.0,
            raster: 2.0,
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn baseline_times_are_positive_and_scale_with_counts() {
        let model = CostModel::new();
        let counts = sample_counts();
        let t = model.baseline_times(&counts, BoundaryMethod::Aabb);
        assert!(t.preprocess > 0.0 && t.sort > 0.0 && t.raster > 0.0);

        let mut bigger = counts;
        bigger.alpha_computations *= 2;
        let t2 = model.baseline_times(&bigger, BoundaryMethod::Aabb);
        assert!(t2.raster > t.raster);
        assert_eq!(t2.preprocess, t.preprocess);
    }

    #[test]
    fn ellipse_identification_costs_more_than_aabb() {
        let model = CostModel::new();
        let counts = sample_counts();
        let aabb = model.baseline_times(&counts, BoundaryMethod::Aabb);
        let ellipse = model.baseline_times(&counts, BoundaryMethod::Ellipse);
        assert!(ellipse.preprocess > aabb.preprocess);
        assert_eq!(ellipse.sort, aabb.sort);
    }

    #[test]
    fn sequential_gstg_pays_for_bitmasks_in_preprocessing() {
        let model = CostModel::new();
        let counts = sample_counts();
        let seq =
            model.gstg_sequential_times(&counts, BoundaryMethod::Ellipse, BoundaryMethod::Ellipse);
        let overlapped =
            model.gstg_overlapped_times(&counts, BoundaryMethod::Ellipse, BoundaryMethod::Ellipse);
        assert!(seq.preprocess > overlapped.preprocess);
        // The overlapped variant is never slower overall.
        assert!(overlapped.total() <= seq.total() + 1e-9);
    }

    #[test]
    fn overlap_hides_bitmask_behind_sorting() {
        let model = CostModel::new();
        let mut counts = sample_counts();
        // Large sorting workload: bitmask generation is fully hidden.
        counts.sort_comparisons = 10_000_000;
        let overlapped =
            model.gstg_overlapped_times(&counts, BoundaryMethod::Aabb, BoundaryMethod::Aabb);
        let baseline_sort = model.baseline_times(&counts, BoundaryMethod::Aabb).sort;
        assert_eq!(overlapped.sort, baseline_sort);
    }

    #[test]
    fn scale_and_add_compose() {
        let t = StageTimes {
            preprocess: 2.0,
            sort: 4.0,
            raster: 6.0,
        };
        let avg = t.add(&t).scale(0.5);
        assert_eq!(avg, t);
    }
}
