//! Baseline tile-based 3D Gaussian Splatting rendering pipeline.
//!
//! This crate implements the conventional 3D-GS rendering pipeline the GS-TG
//! paper builds on and compares against:
//!
//! 1. **Preprocessing** — project every splat, cull invisible ones, compute
//!    depth, 2D mean, 2D covariance (EWA) and view-dependent color, and
//!    identify the tiles each splat influences using one of three boundary
//!    methods (AABB as in the original 3D-GS, OBB as in GSCore, or the exact
//!    ellipse test as in FlashGS).
//! 2. **Tile-wise sorting** — sort the splat list of every tile by depth.
//! 3. **Tile-wise rasterization** — α-computation and front-to-back
//!    α-blending per pixel with the 1/255 and 10⁻⁴ early-exit thresholds of
//!    the reference implementation.
//!
//! The pipeline is a composition of [`splat_core::PipelineStage`]s: the
//! execution configuration, stage instrumentation ([`stats::StageCounts`]),
//! tile scheduler and the blending kernel itself all live in `splat-core`
//! and are shared with the GS-TG pipeline. An analytic [`cost::CostModel`]
//! converts operation counts into normalized stage times for the
//! figure-regeneration binaries.
//!
//! # Quick example
//!
//! ```
//! use splat_render::{RenderConfig, Renderer, BoundaryMethod};
//! use splat_scene::{PaperScene, SceneScale};
//!
//! let scene = PaperScene::Playroom.build(SceneScale::Tiny, 0);
//! let camera = PaperScene::Playroom.default_camera();
//! let config = RenderConfig::builder()
//!     .tile_size(16)
//!     .boundary(BoundaryMethod::Ellipse)
//!     .build()?;
//! let renderer = Renderer::new(config);
//! let output = renderer.render(&scene, &camera);
//! assert_eq!(output.image.width(), scene.width());
//! # Ok::<(), splat_types::RenderError>(())
//! ```
//!
//! Both [`Renderer`] and the allocation-free [`RenderSession`] also
//! implement the backend-agnostic [`splat_core::RenderBackend`] trait, the
//! fallible request/response API (`RenderRequest` → `RenderOutput` /
//! `RenderError`) the batch-serving `Engine` in `splat-engine` builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod config;
pub mod cost;
pub mod pipeline;
pub mod preprocess;
pub mod session;
pub mod sort;
pub mod tiling;

// Shared machinery re-exported from `splat-core` under the paths this
// crate's API exposed before the extraction.
pub use splat_core::blend as raster;
pub use splat_core::image;
pub use splat_core::stats;

pub use bounds::{GaussianFootprint, TileRect};
pub use config::{
    BoundaryMethod, PrepassMode, RenderConfig, RenderConfigBuilder, ALPHA_CULL_THRESHOLD,
    TRANSMITTANCE_EPSILON,
};
pub use cost::{CostModel, StageTimes};
pub use pipeline::{RenderOutput, Renderer};
pub use preprocess::{preprocess, preprocess_into, ProjectedGaussian};
pub use session::RenderSession;
pub use splat_core::{
    ExecutionConfig, FrameArena, Framebuffer, HasExecution, RenderBackend, RenderRequest,
    RenderStats, SessionFrame, SimdMode, StageCounts, TileScheduler,
};
pub use tiling::{
    identify_tiles, identify_tiles_into, identify_tiles_with, TileAssignments, TileGrid,
};
