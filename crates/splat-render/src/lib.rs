//! Baseline tile-based 3D Gaussian Splatting rendering pipeline.
//!
//! This crate implements the conventional 3D-GS rendering pipeline the GS-TG
//! paper builds on and compares against:
//!
//! 1. **Preprocessing** — project every splat, cull invisible ones, compute
//!    depth, 2D mean, 2D covariance (EWA) and view-dependent color, and
//!    identify the tiles each splat influences using one of three boundary
//!    methods (AABB as in the original 3D-GS, OBB as in GSCore, or the exact
//!    ellipse test as in FlashGS).
//! 2. **Tile-wise sorting** — sort the splat list of every tile by depth.
//! 3. **Tile-wise rasterization** — α-computation and front-to-back
//!    α-blending per pixel with the 1/255 and 10⁻⁴ early-exit thresholds of
//!    the reference implementation.
//!
//! Every stage counts the work it performs ([`stats::StageCounts`]) so that
//! experiments can reason about *operation counts* — the quantity the
//! paper's tile-size trade-off is really about — independently of wall-clock
//! noise. An analytic [`cost::CostModel`] converts those counts into
//! normalized stage times for the figure-regeneration binaries.
//!
//! # Quick example
//!
//! ```
//! use splat_render::{RenderConfig, Renderer, BoundaryMethod};
//! use splat_scene::{PaperScene, SceneScale};
//!
//! let scene = PaperScene::Playroom.build(SceneScale::Tiny, 0);
//! let camera = PaperScene::Playroom.default_camera();
//! let config = RenderConfig::new(16, BoundaryMethod::Ellipse);
//! let renderer = Renderer::new(config);
//! let output = renderer.render(&scene, &camera);
//! assert_eq!(output.image.width(), scene.width());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod config;
pub mod cost;
pub mod image;
pub mod pipeline;
pub mod preprocess;
pub mod raster;
pub mod sort;
pub mod stats;
pub mod tiling;

pub use bounds::{GaussianFootprint, TileRect};
pub use config::{BoundaryMethod, RenderConfig, ALPHA_CULL_THRESHOLD, TRANSMITTANCE_EPSILON};
pub use cost::{CostModel, StageTimes};
pub use image::Framebuffer;
pub use pipeline::{RenderOutput, Renderer};
pub use preprocess::{preprocess, ProjectedGaussian};
pub use stats::{RenderStats, StageCounts};
pub use tiling::{TileAssignments, TileGrid};
